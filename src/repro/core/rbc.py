"""The Random Ball Cover data structure (paper §4).

The RBC is a single-level cover of a metric space: a random subset ``R`` of
the database acts as representatives, each representative ``r`` owns a list
``L_r`` of database points, and stores the radius ``psi_r`` of that list
(the distance to the furthest owned point).  The two search algorithms use
slightly different ownership rules:

* **exact** build (:class:`~repro.core.exact.ExactRBC`): each database
  point joins the list of its *nearest representative* — one ``BF(X, R)``;
* **one-shot** build (:class:`~repro.core.oneshot.OneShotRBC`): each
  representative owns its ``s`` *nearest database points* — one
  ``BF(R, X)`` — so lists typically overlap.

Both builds are single calls of the brute-force primitive, which is the
whole point: construction parallelizes exactly like the searches do.

This module holds the shared machinery: representative sampling, list
storage (sorted by distance-to-representative, enabling the Claim-2 trim),
and radii.
"""

from __future__ import annotations

import numpy as np

from ..index.protocol import Capabilities, Index
from ..metrics import get_metric
from ..metrics.base import Metric
from ..metrics.engine import check_dtype, operand_cache
from ..metrics.quantize import check_quantizer, supports_quantization
from ..parallel.pool import Executor
from ..runtime.context import ExecContext, resolve_ctx
from ..simulator.trace import NULL_RECORDER, TraceRecorder
from .packed import PackedLists
from .stats import BuildStats, SearchStats

__all__ = ["RBCBase", "sample_representatives"]


def sample_representatives(
    n: int,
    n_reps: int,
    rng: np.random.Generator,
    *,
    scheme: str = "bernoulli",
) -> np.ndarray:
    """Choose representative ids from ``range(n)``.

    ``scheme="bernoulli"`` follows the paper exactly: each point is chosen
    independently with probability ``n_reps / n`` (so the count is random
    with mean ``n_reps``; the theory's geometric-distribution argument in
    Claim 1 relies on this independence).  ``scheme="exact"`` draws exactly
    ``n_reps`` without replacement — handy when reproducible sizes matter
    more than the letter of the analysis.
    """
    if not 1 <= n_reps <= n:
        raise ValueError(f"need 1 <= n_reps <= n, got n_reps={n_reps}, n={n}")
    if scheme == "bernoulli":
        mask = rng.random(n) < (n_reps / n)
        ids = np.flatnonzero(mask)
        if ids.size == 0:  # resample guard: an empty R is never usable
            ids = rng.choice(n, size=1, replace=False)
        return ids.astype(np.int64)
    if scheme == "exact":
        return np.sort(rng.choice(n, size=n_reps, replace=False)).astype(np.int64)
    raise ValueError(f"unknown sampling scheme {scheme!r}")


class RBCBase(Index):
    """State and helpers shared by the two RBC search structures.

    Parameters
    ----------
    metric:
        metric name or :class:`~repro.metrics.base.Metric` instance.
    seed:
        seed (or Generator) for representative sampling; builds are
        deterministic given the seed.
    executor:
        executor spec forwarded to the brute-force calls.
    rep_scheme:
        ``"bernoulli"`` (paper) or ``"exact"`` representative sampling.
    dtype:
        compute dtype for the query-time distance kernels — ``"float64"``
        (default, exact) or ``"float32"`` (half the GEMM traffic; answers
        are float64-refined, see docs/performance.md).  Builds always run
        in float64 so stored list distances/radii stay exact bounds.
    engine:
        enable the prepared-operand kernel engine (cached norms, packed
        candidate gathers).  On by default for vector databases; disable
        to force the straightforward gather-per-call formulation.
    quantizer:
        quantized scan tier below the engine: ``None`` (off, default),
        ``"int8"``/``"float16"``/``"pq"`` to force a code kind, or
        ``"auto"`` to let the autotuner pick per workload shape.  Answer
        ids stay identical to the uncompressed paths — quantized scans
        only *generate candidates*, which a float64 re-rank finalizes
        (see docs/performance.md).  Requires a metric with a GEMM-shaped
        prepared kernel (the Euclidean family, Mahalanobis, or cosine).
    quant_strategy:
        ``"auto"`` (autotuner decides), ``"flat"`` (one certified scan of
        the whole database replaces both stages) or ``"grouped"`` (the
        pruned stage-2 lists scan the decode cache).  Exact search only.
    """

    def __init__(
        self,
        metric: str | Metric = "euclidean",
        *,
        seed: int | np.random.Generator | None = 0,
        executor: str | Executor | None = None,
        rep_scheme: str = "bernoulli",
        dtype: str = "float64",
        engine: bool = True,
        quantizer: str | None = None,
        quant_strategy: str = "auto",
    ) -> None:
        self.metric = get_metric(metric)
        self.rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        self.executor = executor
        self.rep_scheme = rep_scheme
        self.dtype = check_dtype(dtype)
        self.engine = bool(engine)
        if quantizer is not None:
            if quantizer != "auto":
                check_quantizer(quantizer)
            if not supports_quantization(self.metric):
                raise ValueError(
                    f"quantizer={quantizer!r} requires a metric with a "
                    f"GEMM-shaped prepared kernel; "
                    f"{type(self.metric).__name__} has none"
                )
        if quant_strategy not in ("auto", "flat", "grouped"):
            raise ValueError(
                "quant_strategy must be 'auto', 'flat' or 'grouped', "
                f"got {quant_strategy!r}"
            )
        self.quantizer = quantizer
        self.quant_strategy = quant_strategy

        # populated by build()
        self.X = None
        self.n: int = 0
        #: liveness per database row; deletions tombstone rows so global
        #: ids stay stable (None until the first update touches it)
        self._active: np.ndarray | None = None
        self.rep_ids: np.ndarray | None = None
        self.rep_data = None
        #: packed ownership lists (ids + distances + offsets); the
        #: ``lists``/``list_dists`` properties expose per-list views
        self._packed: PackedLists | None = None
        #: psi_r = max_{x in L_r} rho(x, r)
        self.radii: np.ndarray | None = None
        self.build_stats: BuildStats | None = None
        self.last_stats: SearchStats | None = None

        #: database append buffer: ``X`` is a length-``n`` view of it once
        #: the first insert over-allocates (capacity/length split)
        self._X_buf: np.ndarray | None = None
        #: version stamp for the prepared-operand caches; bumped by every
        #: build and dynamic update so stale norms can never be served
        self._version: int = 0
        #: per-structure prepared operands: name -> (version, Prepared)
        self._prep: dict = {}

    # ------------------------------------------------------------- helpers
    @property
    def is_built(self) -> bool:
        return self.rep_ids is not None

    @property
    def lists(self):
        """Per-representative arrays of owned global ids, ascending by
        distance to the representative (contiguous views into the packed
        storage)."""
        return [] if self._packed is None else self._packed.id_views

    @property
    def list_dists(self):
        """Distances aligned with ``lists`` (contiguous views)."""
        return [] if self._packed is None else self._packed.dist_views

    @property
    def packed(self) -> PackedLists | None:
        """The underlying CSR-style list storage."""
        return self._packed

    @property
    def n_reps(self) -> int:
        self._require_built()
        return int(self.rep_ids.size)

    def _require_built(self) -> None:
        if not self.is_built:
            raise RuntimeError("call build(X) before querying")

    def _require_true_metric(self, why: str) -> None:
        if not getattr(self.metric, "is_true_metric", True):
            raise ValueError(
                f"{type(self.metric).__name__} does not satisfy the triangle "
                f"inequality, which {why} requires"
            )

    def _validate_input(self, X) -> None:
        """Run the metric's dataset validation (e.g. finiteness) if any."""
        validate = getattr(self.metric, "validate", None)
        if validate is not None and isinstance(X, np.ndarray):
            validate(X)

    def _finish_build(
        self,
        X,
        rep_ids: np.ndarray,
        lists: list[np.ndarray],
        list_dists: list[np.ndarray],
        build_evals: int,
    ) -> None:
        self.X = X
        self._X_buf = None
        self.n = self.metric.length(X)
        self.rep_ids = rep_ids
        self.rep_data = self.metric.take(X, rep_ids)
        self._packed = PackedLists(lists, list_dists)
        self.radii = np.array(
            [d[-1] if len(d) else 0.0 for d in list_dists], dtype=np.float64
        )
        self.build_stats = BuildStats(
            n_points=self.n,
            n_reps=int(rep_ids.size),
            build_evals=build_evals,
            list_sizes=[len(lst) for lst in lists],
        )
        self._bump_version()

    # ------------------------------------------------------- kernel engine
    #: refined per-structure by the subclasses (one-shot is approximate,
    #: exact supports range queries); ``quantizable``/``rescorable`` are
    #: resolved against the configured metric in :meth:`capabilities`.
    CAPS = Capabilities(
        exact=True,
        range_queries=False,
        mutable=True,
        process_safe=True,
        quantizable=True,
        rescorable=True,
        warmable=True,
    )

    def capabilities(self) -> Capabilities:
        return self.CAPS.replace(
            quantizable=self.CAPS.quantizable
            and supports_quantization(self.metric),
            rescorable=self.CAPS.rescorable and self._rescorable_now(),
        )

    def _bump_version(self) -> None:
        """Invalidate every prepared operand derived from the index state."""
        self._version += 1
        self._prep.clear()

    def warm(self, ctx: ExecContext | None = None) -> "RBCBase":
        """Pre-populate the per-version caches the query hot path fills
        lazily (prepared representatives and candidate matrix for the
        effective dtype), so a serving front-end pays the one-time
        preparation cost before the first query arrives instead of inside
        its latency budget.  Idempotent; invalidated like everything else
        by the next build/insert/delete.  Subclasses extend this with
        their own derived structures."""
        self._require_built()
        ctx = self._base_ctx() if ctx is None else ctx.overriding(self._base_ctx())
        if self._engine_active(ctx):
            dtype = ctx.dtype_or_default
            self._prepared_reps(dtype)
            self._prepared_cands(dtype)
            if self.quantizer is not None:
                # resolve the tuned kernel plan and build the code operand
                # now, so serving pays for autotuning + quantization before
                # the first query instead of inside its latency budget
                plan = self._quant_plan()
                self._quant_operand(plan.quantizer)
        return self

    # ---------------------------------------------------- execution context
    def _base_ctx(self) -> ExecContext:
        """The index's own configuration as an execution context: the
        fallback every per-call context merges over."""
        return ExecContext(
            executor=self.executor,
            dtype=self.dtype,
            engine=self.engine,
        )

    def _call_ctx(
        self,
        ctx: ExecContext | None,
        *,
        recorder: TraceRecorder | None = None,
        executor=None,
    ) -> ExecContext:
        """Resolve one call's execution context.

        Merge order (first set wins): explicit ``ctx`` fields, then the
        legacy per-call kwargs, then the index configuration — so
        ``query(..., recorder=r)`` and ``query(..., ctx=ExecContext(
        recorder=r))`` are the same run.
        """
        call = resolve_ctx(ctx, recorder=recorder, executor=executor)
        return call.overriding(self._base_ctx())

    def _engine_active(self, ctx: ExecContext | None = None) -> bool:
        """Prepared-operand kernels apply to vector databases only, and the
        process backend owns its operand copies (no sharing to prepare).
        The rule itself lives on :meth:`ExecContext.engine_active`."""
        ctx = self._base_ctx() if ctx is None else ctx
        return ctx.engine_active(self.metric, self.X)

    def _prepared_reps(self, dtype: str | None = None):
        """Prepared representative block (cached until the next update).

        ``dtype`` defaults to the index's own; a per-call override (via
        :class:`ExecContext`) caches under its own key, so alternating
        dtypes never thrash a single slot.
        """
        dtype = self.dtype if dtype is None else dtype
        key = ("reps", dtype)
        ent = self._prep.get(key)
        if ent is None:
            ent = operand_cache.get(
                self.metric, self.rep_data, dtype=dtype, version=self._version
            )
            self._prep[key] = ent
        return ent

    def _prepared_cands(self, dtype: str | None = None):
        """Prepared pre-gathered candidate matrix, aligned with the packed
        list storage: backing row ``t`` holds the database point
        ``packed.ids[t]``, so every stage-2 list prefix is a contiguous
        slice of compute-ready rows (slack rows are zero-filled)."""
        dtype = self.dtype if dtype is None else dtype
        key = ("cands", dtype)
        ent = self._prep.get(key)
        if ent is None:
            packed = self._packed
            # clip slack/stale ids into range: those rows are never read
            safe_ids = np.clip(packed.ids, 0, self.n - 1)
            for j in range(packed.n_lists):
                lo, hi = packed.span(j)
                safe_ids[hi : packed.starts[j + 1]] = 0
            gathered = self.X[safe_ids]
            ent = operand_cache.get(
                self.metric, gathered, dtype=dtype, version=self._version
            )
            # keep the gathered matrix alive alongside its prepared form
            # (the cache holds only a weak reference to it)
            self._prep[key] = ent
            self._prep[("cands_src", dtype)] = gathered
        return ent

    # ----------------------------------------------------- quantized tier
    def _estimate_candidate_fraction(self) -> float:
        """Fraction of the database the pruning rules are expected to keep
        per query — the autotuner's flat-vs-grouped decider.  The base
        structure has no pruning model; subclasses override with a cheap
        probe (see ``ExactRBC``)."""
        return 1.0

    def _quant_plan(self):
        """The tuned :class:`~repro.runtime.autotune.KernelPlan` for this
        index (resolved once per version; ``quantizer=None`` -> ``None``).

        ``quantizer="auto"`` lets the autotuner pick the code kind and the
        flat/grouped strategy from the machine model and a cheap pruning
        probe; an explicit kind pins the quantizer but still takes the
        tuned strategy/chunking unless ``quant_strategy`` pins those too.
        """
        if self.quantizer is None:
            return None
        cached = self._prep.get("quant_plan")
        if cached is not None:
            return cached
        from dataclasses import replace as dc_replace

        from ..runtime.autotune import default_autotuner

        kind = None if self.quantizer == "auto" else self.quantizer
        plan = default_autotuner.plan_for(
            type(self).__name__.lower(),
            self.n,
            int(self.metric.dim(self.X)),
            kernel=self.metric.prepared_kernel,
            quantizer=kind,
            cand_frac=self._estimate_candidate_fraction(),
        )
        if self.quant_strategy != "auto":
            plan = dc_replace(plan, strategy=self.quant_strategy)
        self._prep["quant_plan"] = plan
        return plan

    def _quant_operand(self, kind: str):
        """Quantized code operand aligned with the packed list storage.

        Backing row ``t`` codes the database point ``packed.ids[t]`` —
        the same layout as :meth:`_prepared_cands`, so grouped stage-2
        scans slice it directly, while the flat scan covers exactly the
        live points (slack rows are masked out, tombstoned points are
        simply absent).  Derived through
        :meth:`~repro.metrics.engine.OperandCache.get_quantized`, so it
        shares the float64 parent's version stamp and is evicted with it.
        """
        key = ("quant", kind)
        ent = self._prep.get(key)
        if ent is None:
            self._prepared_cands("float64")  # parent + gathered matrix
            gathered = self._prep[("cands_src", "float64")]
            packed = self._packed
            safe_ids = np.clip(packed.ids, 0, self.n - 1).astype(np.int64)
            valid = np.zeros(safe_ids.size, dtype=bool)
            for j in range(packed.n_lists):
                lo, hi = packed.span(j)
                valid[lo:hi] = True
                # slack rows map to -1 (refine_topk's ignored padding id),
                # never to a real point, should one leak past the masks
                safe_ids[hi : packed.starts[j + 1]] = -1
            ent = operand_cache.get_quantized(
                self.metric,
                gathered,
                kind,
                version=self._version,
                ids=safe_ids,
                valid=valid,
            )
            self._prep[key] = ent
        return ent

    # ------------------------------------------------------ dynamic updates
    @property
    def active_ids(self) -> np.ndarray:
        """Global ids of live (non-deleted) database points."""
        self._require_built()
        if self._active is None:
            return np.arange(self.n, dtype=np.int64)
        return np.flatnonzero(self._active).astype(np.int64)

    @property
    def n_active(self) -> int:
        self._require_built()
        if self._active is None:
            return self.n
        return int(self._active.sum())

    def _require_vector_db(self, what: str) -> None:
        if not isinstance(self.X, np.ndarray):
            raise ValueError(f"{what} requires an ndarray database")

    def _append_point(self, x) -> int:
        """Append a row to the database; returns its global id.

        Amortized O(1): the database lives in an over-allocated append
        buffer (capacity/length split, doubled geometrically) and ``X`` is
        a length-``n`` view of it, so most appends are a single row copy.
        """
        x = np.asarray(x, dtype=np.float64).reshape(1, -1)
        if x.shape[1] != self.X.shape[1]:
            raise ValueError(
                f"dimension mismatch: point has d={x.shape[1]}, "
                f"database has d={self.X.shape[1]}"
            )
        if self._X_buf is None or self.n + 1 > self._X_buf.shape[0]:
            cap = max(self.n + 1, 2 * self.n, 8)
            buf = np.empty((cap, self.X.shape[1]), dtype=np.float64)
            buf[: self.n] = self.X
            self._X_buf = buf
        self._X_buf[self.n] = x[0]
        self.n += 1
        self.X = self._X_buf[: self.n]
        if self._active is None:
            self._active = np.ones(self.n - 1, dtype=bool)
        self._active = np.append(self._active, True)
        self._bump_version()
        return self.n - 1

    def _tombstone(self, gid: int) -> None:
        if self._active is None:
            self._active = np.ones(self.n, dtype=bool)
        if not 0 <= gid < self.n or not self._active[gid]:
            raise ValueError(f"point {gid} does not exist or is deleted")
        self._active[gid] = False
        self._bump_version()

    def memory_footprint(self) -> int:
        """Approximate bytes held by the cover: ids + distances + radii,
        counting *allocated capacity* (packed-list slack and the database
        append buffer's tail included), not just live entries."""
        self._require_built()
        total = self.rep_ids.nbytes + self.radii.nbytes
        if self._packed is not None:
            total += self._packed.nbytes
        if self._X_buf is not None and isinstance(self.X, np.ndarray):
            # slack rows beyond the live view
            total += (self._X_buf.shape[0] - self.n) * self.X.itemsize * (
                self.X.shape[1] if self.X.ndim == 2 else 1
            )
        for key, val in self._prep.items():
            if isinstance(key, tuple) and key[0] in ("cands_src", "quant"):
                total += val.nbytes
        return total

    # ------------------------------------------------------------ interface
    def build(
        self,
        X,
        n_reps: int | None = None,
        *,
        recorder: TraceRecorder = NULL_RECORDER,
        ctx: ExecContext | None = None,
    ) -> "RBCBase":
        raise NotImplementedError

    def query(
        self,
        Q,
        k: int = 1,
        *,
        recorder: TraceRecorder = NULL_RECORDER,
        ctx: ExecContext | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = (
            f"n={self.n}, n_reps={self.rep_ids.size}" if self.is_built else "unbuilt"
        )
        return f"{type(self).__name__}({self.metric.name}, {state})"
