"""The Random Ball Cover data structure (paper §4).

The RBC is a single-level cover of a metric space: a random subset ``R`` of
the database acts as representatives, each representative ``r`` owns a list
``L_r`` of database points, and stores the radius ``psi_r`` of that list
(the distance to the furthest owned point).  The two search algorithms use
slightly different ownership rules:

* **exact** build (:class:`~repro.core.exact.ExactRBC`): each database
  point joins the list of its *nearest representative* — one ``BF(X, R)``;
* **one-shot** build (:class:`~repro.core.oneshot.OneShotRBC`): each
  representative owns its ``s`` *nearest database points* — one
  ``BF(R, X)`` — so lists typically overlap.

Both builds are single calls of the brute-force primitive, which is the
whole point: construction parallelizes exactly like the searches do.

This module holds the shared machinery: representative sampling, list
storage (sorted by distance-to-representative, enabling the Claim-2 trim),
and radii.
"""

from __future__ import annotations

import numpy as np

from ..metrics import get_metric
from ..metrics.base import Metric
from ..parallel.pool import Executor
from ..simulator.trace import NULL_RECORDER, TraceRecorder
from .stats import BuildStats, SearchStats

__all__ = ["RBCBase", "sample_representatives"]


def sample_representatives(
    n: int,
    n_reps: int,
    rng: np.random.Generator,
    *,
    scheme: str = "bernoulli",
) -> np.ndarray:
    """Choose representative ids from ``range(n)``.

    ``scheme="bernoulli"`` follows the paper exactly: each point is chosen
    independently with probability ``n_reps / n`` (so the count is random
    with mean ``n_reps``; the theory's geometric-distribution argument in
    Claim 1 relies on this independence).  ``scheme="exact"`` draws exactly
    ``n_reps`` without replacement — handy when reproducible sizes matter
    more than the letter of the analysis.
    """
    if not 1 <= n_reps <= n:
        raise ValueError(f"need 1 <= n_reps <= n, got n_reps={n_reps}, n={n}")
    if scheme == "bernoulli":
        mask = rng.random(n) < (n_reps / n)
        ids = np.flatnonzero(mask)
        if ids.size == 0:  # resample guard: an empty R is never usable
            ids = rng.choice(n, size=1, replace=False)
        return ids.astype(np.int64)
    if scheme == "exact":
        return np.sort(rng.choice(n, size=n_reps, replace=False)).astype(np.int64)
    raise ValueError(f"unknown sampling scheme {scheme!r}")


class RBCBase:
    """State and helpers shared by the two RBC search structures.

    Parameters
    ----------
    metric:
        metric name or :class:`~repro.metrics.base.Metric` instance.
    seed:
        seed (or Generator) for representative sampling; builds are
        deterministic given the seed.
    executor:
        executor spec forwarded to the brute-force calls.
    rep_scheme:
        ``"bernoulli"`` (paper) or ``"exact"`` representative sampling.
    """

    def __init__(
        self,
        metric: str | Metric = "euclidean",
        *,
        seed: int | np.random.Generator | None = 0,
        executor: str | Executor | None = None,
        rep_scheme: str = "bernoulli",
    ) -> None:
        self.metric = get_metric(metric)
        self.rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        self.executor = executor
        self.rep_scheme = rep_scheme

        # populated by build()
        self.X = None
        self.n: int = 0
        #: liveness per database row; deletions tombstone rows so global
        #: ids stay stable (None until the first update touches it)
        self._active: np.ndarray | None = None
        self.rep_ids: np.ndarray | None = None
        self.rep_data = None
        #: per-representative arrays of owned global ids, ascending by
        #: distance to the representative
        self.lists: list[np.ndarray] = []
        #: distances aligned with ``lists``
        self.list_dists: list[np.ndarray] = []
        #: psi_r = max_{x in L_r} rho(x, r)
        self.radii: np.ndarray | None = None
        self.build_stats: BuildStats | None = None
        self.last_stats: SearchStats | None = None

    # ------------------------------------------------------------- helpers
    @property
    def is_built(self) -> bool:
        return self.rep_ids is not None

    @property
    def n_reps(self) -> int:
        self._require_built()
        return int(self.rep_ids.size)

    def _require_built(self) -> None:
        if not self.is_built:
            raise RuntimeError("call build(X) before querying")

    def _require_true_metric(self, why: str) -> None:
        if not getattr(self.metric, "is_true_metric", True):
            raise ValueError(
                f"{type(self.metric).__name__} does not satisfy the triangle "
                f"inequality, which {why} requires"
            )

    def _validate_input(self, X) -> None:
        """Run the metric's dataset validation (e.g. finiteness) if any."""
        validate = getattr(self.metric, "validate", None)
        if validate is not None and isinstance(X, np.ndarray):
            validate(X)

    def _finish_build(
        self,
        X,
        rep_ids: np.ndarray,
        lists: list[np.ndarray],
        list_dists: list[np.ndarray],
        build_evals: int,
    ) -> None:
        self.X = X
        self.n = self.metric.length(X)
        self.rep_ids = rep_ids
        self.rep_data = self.metric.take(X, rep_ids)
        self.lists = lists
        self.list_dists = list_dists
        self.radii = np.array(
            [d[-1] if d.size else 0.0 for d in list_dists], dtype=np.float64
        )
        self.build_stats = BuildStats(
            n_points=self.n,
            n_reps=int(rep_ids.size),
            build_evals=build_evals,
            list_sizes=[int(l.size) for l in lists],
        )

    # ------------------------------------------------------ dynamic updates
    @property
    def active_ids(self) -> np.ndarray:
        """Global ids of live (non-deleted) database points."""
        self._require_built()
        if self._active is None:
            return np.arange(self.n, dtype=np.int64)
        return np.flatnonzero(self._active).astype(np.int64)

    @property
    def n_active(self) -> int:
        self._require_built()
        if self._active is None:
            return self.n
        return int(self._active.sum())

    def _require_vector_db(self, what: str) -> None:
        if not isinstance(self.X, np.ndarray):
            raise ValueError(f"{what} requires an ndarray database")

    def _append_point(self, x) -> int:
        """Append a row to the database; returns its global id.

        O(n) per call (the array is copied); batch churn should prefer a
        rebuild.  Provided so incremental workloads stay convenient.
        """
        x = np.asarray(x, dtype=np.float64).reshape(1, -1)
        if x.shape[1] != self.X.shape[1]:
            raise ValueError(
                f"dimension mismatch: point has d={x.shape[1]}, "
                f"database has d={self.X.shape[1]}"
            )
        self.X = np.vstack([self.X, x])
        if self._active is None:
            self._active = np.ones(self.n, dtype=bool)
        self._active = np.append(self._active, True)
        self.n += 1
        return self.n - 1

    def _tombstone(self, gid: int) -> None:
        if self._active is None:
            self._active = np.ones(self.n, dtype=bool)
        if not 0 <= gid < self.n or not self._active[gid]:
            raise ValueError(f"point {gid} does not exist or is deleted")
        self._active[gid] = False

    def memory_footprint(self) -> int:
        """Approximate bytes held by the cover (ids + distances + radii)."""
        self._require_built()
        total = self.rep_ids.nbytes + self.radii.nbytes
        total += sum(l.nbytes for l in self.lists)
        total += sum(d.nbytes for d in self.list_dists)
        return total

    # ------------------------------------------------------------ interface
    def build(
        self, X, n_reps: int | None = None, *, recorder: TraceRecorder = NULL_RECORDER
    ) -> "RBCBase":
        raise NotImplementedError

    def query(
        self, Q, k: int = 1, *, recorder: TraceRecorder = NULL_RECORDER
    ) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = (
            f"n={self.n}, n_reps={self.rep_ids.size}" if self.is_built else "unbuilt"
        )
        return f"{type(self).__name__}({self.metric.name}, {state})"
