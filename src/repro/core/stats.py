"""Per-query-batch search statistics.

The paper's work bounds are about distance evaluations, so every search
records how many were spent in each stage and what the pruning rules did.
These are the observables the theory benchmarks compare against the
predictions of Claims 1-2 and Theorems 1-2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SearchStats", "BuildStats"]


@dataclass
class SearchStats:
    """Work accounting for one batch query."""

    n_queries: int = 0
    #: distance evaluations in the query-to-representatives stage
    stage1_evals: int = 0
    #: distance evaluations against ownership-list candidates
    stage2_evals: int = 0
    #: representatives discarded by the psi-radius rule, summed over queries
    pruned_by_psi: int = 0
    #: representatives discarded by the 3-gamma rule (Lemma 1)
    pruned_by_3gamma: int = 0
    #: candidate points skipped by the sorted-list 4-gamma trim (Claim 2)
    trimmed_by_4gamma: int = 0
    #: candidate points actually examined in stage 2
    candidates_examined: int = 0
    #: quantized-tier report when the query ran on compressed codes
    #: (strategy, quantizer, backend, over-fetch bound, recall before the
    #: float64 re-rank, ...); ``None`` for unquantized queries.  Not part
    #: of :meth:`rule_counts` — the rule observables stay batching- and
    #: quantization-invariant.
    quant: dict | None = None

    @property
    def total_evals(self) -> int:
        return self.stage1_evals + self.stage2_evals

    def per_query_evals(self) -> float:
        """Mean distance evaluations per query — the paper's work measure."""
        return self.total_evals / self.n_queries if self.n_queries else 0.0

    def rule_counts(self) -> dict[str, int]:
        """The pruning-rule observables as a dict, for exact comparison.

        These counters are *batching-invariant*: the batched stage 2 must
        report the same values as a per-query reference run (the regression
        tests compare them with ``==``).  ``stage2_evals`` is deliberately
        excluded — grouped scans may pad ragged prefixes, which is real
        kernel work and is honestly counted as such.
        """
        return {
            "n_queries": self.n_queries,
            "pruned_by_psi": self.pruned_by_psi,
            "pruned_by_3gamma": self.pruned_by_3gamma,
            "trimmed_by_4gamma": self.trimmed_by_4gamma,
            "candidates_examined": self.candidates_examined,
        }


@dataclass
class BuildStats:
    """Work accounting for a build."""

    n_points: int = 0
    n_reps: int = 0
    build_evals: int = 0
    list_sizes: list[int] = field(default_factory=list)

    @property
    def max_list(self) -> int:
        return max(self.list_sizes) if self.list_sizes else 0

    @property
    def mean_list(self) -> float:
        return (
            sum(self.list_sizes) / len(self.list_sizes) if self.list_sizes else 0.0
        )
