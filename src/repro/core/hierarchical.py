"""Two-level Random Ball Cover (extension beyond the paper).

The paper's RBC is deliberately a *single-level* cover: stage 1 scans all
``n_r ~ sqrt(n)`` representatives.  For very large databases that scan
itself becomes the bottleneck, and the natural extension — noted here as
the recursive continuation of the paper's construction — is to index the
representative set with another RBC.  With ``n_r = n^{2/3}`` outer
representatives (lists of size ``~n^{1/3}``) and an inner cover of
``n^{1/3}`` representatives over them, query work drops from
``O(sqrt(n))`` to ``O(n^{1/3})`` per query at additional (quantifiable)
risk of routing error — the same accuracy/work dial as the one-shot
algorithm, now with two chances to mis-route.  Multi-probe at both levels
compensates.

Like everything in this package, both levels are brute-force-structured,
so the hierarchy preserves the paper's parallelization story.
"""

from __future__ import annotations

import numpy as np

from ..metrics import get_metric
from ..metrics.base import Metric
from ..parallel.bruteforce import _is_batch, _record_dist_tile
from ..parallel.reduce import EMPTY_IDX, dedupe_rows, merge_topk, topk_of_block
from ..runtime.context import ExecContext, resolve_ctx
from ..simulator.trace import NULL_RECORDER, TraceRecorder
from .oneshot import OneShotRBC
from .stats import SearchStats

__all__ = ["HierarchicalOneShotRBC"]


class HierarchicalOneShotRBC:
    """One-shot search with an RBC-indexed representative set.

    Parameters mirror :class:`~repro.core.oneshot.OneShotRBC`; the outer
    level defaults to ``n_reps = s = n^{2/3}``-flavoured sizes and the
    inner level to the square-root rule over the representative set.
    """

    def __init__(
        self,
        metric: str | Metric = "euclidean",
        *,
        seed: int | np.random.Generator | None = 0,
        executor=None,
    ) -> None:
        self.metric = get_metric(metric)
        self.seed = seed
        self.executor = executor
        self.outer: OneShotRBC | None = None
        self.inner: OneShotRBC | None = None
        self.last_stats: SearchStats | None = None

    @property
    def is_built(self) -> bool:
        return self.outer is not None

    def build(
        self,
        X,
        n_reps: int | None = None,
        s: int | None = None,
        *,
        inner_n_reps: int | None = None,
        inner_s: int | None = None,
        recorder: TraceRecorder = NULL_RECORDER,
        ctx: ExecContext | None = None,
    ) -> "HierarchicalOneShotRBC":
        """Build both levels (two brute-force calls, one per level).

        ``ctx`` rides through to both level builds; each inner index still
        applies its own configuration for whatever ``ctx`` leaves unset.
        """
        ctx = resolve_ctx(ctx, recorder=recorder)
        n = self.metric.length(X)
        if n == 0:
            raise ValueError("database is empty")
        cube = max(2, int(round(n ** (1.0 / 3.0))))
        n_reps = n_reps if n_reps is not None else min(n, cube * cube)
        s = s if s is not None else 3 * cube

        self.outer = OneShotRBC(
            metric=self.metric, seed=self.seed, executor=self.executor
        )
        self.outer.build(X, n_reps=n_reps, s=min(s, n), ctx=ctx)

        nr_actual = self.outer.n_reps
        inner_n_reps = (
            inner_n_reps
            if inner_n_reps is not None
            else max(1, int(round(nr_actual**0.5)))
        )
        inner_s = (
            inner_s
            if inner_s is not None
            else min(nr_actual, 3 * max(1, int(round(nr_actual**0.5))))
        )
        # the inner cover indexes the representative POINTS; its returned
        # indices are outer-representative indices
        self.inner = OneShotRBC(
            metric=self.metric, seed=self.seed, executor=self.executor
        )
        self.inner.build(
            self.outer.rep_data,
            n_reps=inner_n_reps,
            s=inner_s,
            ctx=ctx,
        )
        return self

    def query(
        self,
        Q,
        k: int = 1,
        *,
        n_probes: int = 2,
        recorder: TraceRecorder = NULL_RECORDER,
        ctx: ExecContext | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Three brute-force hops: inner reps → outer reps → points.

        ``n_probes`` is applied at both levels (the routing level needs it
        more, having two chances to miss).  ``ctx`` carries the recorder
        (and any execution overrides) through every hop.
        """
        if not self.is_built:
            raise RuntimeError("call build(X) before querying")
        if k < 1 or n_probes < 1:
            raise ValueError("k and n_probes must be >= 1")
        ctx = resolve_ctx(ctx, recorder=recorder)
        recorder = ctx.recorder
        metric = self.metric
        stats = SearchStats()
        evals0 = metric.counter.n_evals

        # levels 1+2: route to outer representatives via the inner cover
        _, rep_choice = self.inner.query(Q, k=n_probes, n_probes=n_probes,
                                         ctx=ctx)
        stats.stage1_evals = metric.counter.n_evals - evals0

        Qb = Q if _is_batch(metric, Q) else metric._as_batch(Q)
        m = metric.length(Qb)
        stats.n_queries = m

        # level 3: scan the chosen outer representatives' lists
        kk = k * n_probes
        best_d = np.full((m, kk), np.inf)
        best_i = np.full((m, kk), EMPTY_IDX, dtype=np.int64)
        evals1 = metric.counter.n_evals
        with recorder.phase("hier:stage3"):
            for probe in range(rep_choice.shape[1]):
                choice = rep_choice[:, probe]
                for rep in np.unique(choice):
                    if rep < 0:
                        continue
                    rows = np.flatnonzero(choice == rep)
                    cand = self.outer.lists[rep]
                    if cand.size == 0:
                        continue
                    Qg = metric.take(Qb, rows)
                    D = metric.pairwise(Qg, metric.take(self.outer.X, cand))
                    _record_dist_tile(
                        recorder, metric, rows.size, cand.size,
                        metric.dim(Qb), "hier:stage3",
                    )
                    d, li = topk_of_block(D, kk)
                    gi = np.where(
                        li >= 0, cand[np.clip(li, 0, None)], EMPTY_IDX
                    )
                    best_d[rows], best_i[rows] = merge_topk(
                        (best_d[rows], best_i[rows]), (d, gi)
                    )
                    stats.candidates_examined += int(D.size)
        stats.stage2_evals = metric.counter.n_evals - evals1

        best_d, best_i = dedupe_rows(best_d, best_i, k)
        self.last_stats = stats
        return best_d, best_i
