"""Packed CSR-style storage for the RBC ownership lists.

The seed implementation stored each representative's list as a separate
``np.ndarray`` in a Python list.  Stage-2 kernels read *prefixes* of these
lists on every query batch, so the layout matters: packed storage keeps all
ids (and the aligned distances-to-representative) in two concatenated
arrays with an offset table, making every per-representative read a
contiguous slice — no pointer chasing, no per-list allocation, and a
natural backing layout for the pre-gathered candidate matrix the kernel
engine builds on top (one ``(total, d)`` block whose row ``t`` is the
database point ``ids[t]``).

Dynamic updates are supported in place: each list segment carries slack
capacity (grown geometrically, like the database append buffer), so
inserts shift only within a segment until it fills.  Mutators return
whether the *backing layout* changed, which callers use to invalidate
derived caches.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["PackedLists"]


class PackedLists:
    """Concatenated ownership lists: ids + distances + offsets.

    List ``j`` occupies rows ``starts[j] : starts[j] + lengths[j]`` of the
    backing arrays; its *capacity* is ``starts[j+1] - starts[j]`` (slack
    lives at the segment tail).  Fresh builds are packed tight; slack
    appears only after updates grow a segment.
    """

    __slots__ = ("ids", "dists", "starts", "lengths", "version")

    def __init__(self, lists: Sequence, dists: Sequence) -> None:
        if len(lists) != len(dists):
            raise ValueError("lists and dists must align")
        #: monotone mutation stamp: bumped by every mutator so derived
        #: state (semantic-cache certificates, rank tables) built against
        #: one ownership layout can detect that it changed
        self.version = 0
        sizes = np.array([len(lst) for lst in lists], dtype=np.int64)
        self.starts = np.zeros(sizes.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=self.starts[1:])
        total = int(self.starts[-1])
        self.ids = np.empty(total, dtype=np.int64)
        self.dists = np.empty(total, dtype=np.float64)
        for j, (l, d) in enumerate(zip(lists, dists)):
            lo, hi = self.starts[j], self.starts[j] + sizes[j]
            self.ids[lo:hi] = l
            self.dists[lo:hi] = d
        self.lengths = sizes

    # ------------------------------------------------------------- reading
    @property
    def n_lists(self) -> int:
        return int(self.lengths.size)

    @property
    def total(self) -> int:
        """Number of stored entries (excluding slack)."""
        return int(self.lengths.sum())

    @property
    def capacity(self) -> int:
        """Allocated entries in the backing arrays (including slack)."""
        return int(self.ids.size)

    @property
    def nbytes(self) -> int:
        """Allocated bytes, slack included."""
        return (
            self.ids.nbytes + self.dists.nbytes
            + self.starts.nbytes + self.lengths.nbytes
        )

    def size(self, j: int) -> int:
        return int(self.lengths[j])

    def span(self, j: int) -> tuple[int, int]:
        """``(lo, hi)`` row range of list ``j`` in the backing arrays."""
        lo = int(self.starts[j])
        return lo, lo + int(self.lengths[j])

    def ids_of(self, j: int) -> np.ndarray:
        """List ``j``'s global ids — a contiguous view, never a copy."""
        lo, hi = self.span(j)
        return self.ids[lo:hi]

    def dists_of(self, j: int) -> np.ndarray:
        """List ``j``'s distances-to-representative — a contiguous view."""
        lo, hi = self.span(j)
        return self.dists[lo:hi]

    @property
    def id_views(self) -> "_SegmentSeq":
        return _SegmentSeq(self, self.ids_of)

    @property
    def dist_views(self) -> "_SegmentSeq":
        return _SegmentSeq(self, self.dists_of)

    # ------------------------------------------------------------ mutation
    def _grow(self, j: int, need: int) -> None:
        """Grow segment ``j``'s capacity to at least ``need`` (geometric)."""
        lo, cap_end = int(self.starts[j]), int(self.starts[j + 1])
        cap = cap_end - lo
        new_cap = max(int(need), 2 * cap, 4)
        delta = new_cap - cap
        self.ids = np.concatenate(
            [self.ids[:cap_end], np.zeros(delta, dtype=np.int64), self.ids[cap_end:]]
        )
        self.dists = np.concatenate(
            [self.dists[:cap_end], np.zeros(delta), self.dists[cap_end:]]
        )
        self.starts[j + 1 :] += delta

    def insert(self, j: int, pos: int, gid: int, dist: float) -> bool:
        """Insert one entry at ``pos`` within list ``j`` (keeps sort order).

        Returns ``True`` when the backing layout changed (segment grew),
        so callers know to invalidate anything derived from row numbers.
        """
        length = int(self.lengths[j])
        self.version += 1
        relayout = False
        if length + 1 > int(self.starts[j + 1]) - int(self.starts[j]):
            self._grow(j, length + 1)
            relayout = True
        lo = int(self.starts[j])
        self.ids[lo + pos + 1 : lo + length + 1] = self.ids[
            lo + pos : lo + length
        ].copy()
        self.dists[lo + pos + 1 : lo + length + 1] = self.dists[
            lo + pos : lo + length
        ].copy()
        self.ids[lo + pos] = gid
        self.dists[lo + pos] = dist
        self.lengths[j] = length + 1
        return relayout

    def delete_at(self, j: int, pos: int) -> None:
        """Remove the entry at ``pos`` of list ``j`` (leaves slack behind)."""
        self.version += 1
        lo, length = int(self.starts[j]), int(self.lengths[j])
        self.ids[lo + pos : lo + length - 1] = self.ids[
            lo + pos + 1 : lo + length
        ].copy()
        self.dists[lo + pos : lo + length - 1] = self.dists[
            lo + pos + 1 : lo + length
        ].copy()
        self.lengths[j] = length - 1

    def replace(self, j: int, new_ids: np.ndarray, new_dists: np.ndarray) -> bool:
        """Replace list ``j`` wholesale; returns ``True`` on relayout."""
        self.version += 1
        need = len(new_ids)
        relayout = False
        if need > int(self.starts[j + 1]) - int(self.starts[j]):
            self._grow(j, need)
            relayout = True
        lo = int(self.starts[j])
        self.ids[lo : lo + need] = new_ids
        self.dists[lo : lo + need] = new_dists
        self.lengths[j] = need
        return relayout

    def drop(self, j: int) -> None:
        """Remove list ``j`` entirely (representative deletion)."""
        self.version += 1
        lo, cap_end = int(self.starts[j]), int(self.starts[j + 1])
        self.ids = np.concatenate([self.ids[:lo], self.ids[cap_end:]])
        self.dists = np.concatenate([self.dists[:lo], self.dists[cap_end:]])
        width = cap_end - lo
        self.starts = np.concatenate(
            [self.starts[:j], self.starts[j + 1 :] - width]
        )
        self.lengths = np.delete(self.lengths, j)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PackedLists(n_lists={self.n_lists}, total={self.total}, "
            f"capacity={self.capacity})"
        )


class _SegmentSeq(Sequence):
    """Read-only sequence of per-list views over a :class:`PackedLists`.

    Presents the packed storage through the seed's ``list[np.ndarray]``
    interface (``index.lists[j]``, iteration, ``len``) without copying.
    """

    __slots__ = ("_packed", "_view")

    def __init__(self, packed: PackedLists, view) -> None:
        self._packed = packed
        self._view = view

    def __len__(self) -> int:
        return self._packed.n_lists

    def __getitem__(self, j):
        n = self._packed.n_lists
        if isinstance(j, (int, np.integer)):
            if j < 0:
                j += n
            if not 0 <= j < n:
                raise IndexError(f"list index {j} out of range for {n} lists")
            return self._view(int(j))
        if isinstance(j, slice):
            return [self._view(t) for t in range(*j.indices(n))]
        raise TypeError(f"list indices must be integers or slices, not {type(j)}")
