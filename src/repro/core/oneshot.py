"""The one-shot RBC search algorithm (paper §5.1).

Search is two brute-force calls: ``BF(q, R)`` finds each query's nearest
representative ``r``; ``BF(q, X[L_r])`` scans that representative's
ownership list and returns the nearest point found.  With the Theorem-2
parameter setting the result is the true nearest neighbor with probability
at least ``1 - delta``; otherwise the parameter ``s = |L_r|`` trades
accuracy (measured as the *rank* of the returned point — see
:mod:`repro.eval.rank`) against time, the trade-off plotted in the paper's
Figure 1.

Batch queries are grouped by their chosen representative, so the second
stage is one dense ``(group, s)`` distance block per representative — the
same matmul-like structure as the first stage, which is what makes the
algorithm effective on throughput hardware (Table 2).
"""

from __future__ import annotations

import numpy as np

from ..parallel.bruteforce import _is_batch, _record_dist_tile, bf_knn
from ..parallel.reduce import EMPTY_IDX, dedupe_rows, merge_group_topk
from ..simulator.trace import NULL_RECORDER, Op, TraceRecorder
from .params import oneshot_params
from .rbc import RBCBase, sample_representatives
from .stats import SearchStats

__all__ = ["OneShotRBC"]


class OneShotRBC(RBCBase):
    """Random Ball Cover with the one-shot (high-probability) search.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import OneShotRBC
    >>> X = np.random.default_rng(0).normal(size=(2000, 8))
    >>> index = OneShotRBC(seed=0).build(X)
    >>> dist, idx = index.query(X[:5])
    >>> idx.shape
    (5, 1)
    """

    def build(
        self,
        X,
        n_reps: int | None = None,
        s: int | None = None,
        *,
        delta: float = 0.05,
        c: float = 1.0,
        recorder: TraceRecorder = NULL_RECORDER,
    ) -> "OneShotRBC":
        """Build the cover: sample ``R``, then one ``BF(R, X)`` call.

        If ``n_reps``/``s`` are omitted they default to the Theorem-2
        setting ``n_r = s = c sqrt(n ln 1/delta)`` for the given expansion
        rate ``c`` and failure probability ``delta``.
        """
        n = self.metric.length(X)
        if n == 0:
            raise ValueError("database is empty")
        self._validate_input(X)
        auto_nr, auto_s = oneshot_params(n, c=c, delta=delta)
        n_reps = auto_nr if n_reps is None else n_reps
        s = auto_s if s is None else s
        if not 1 <= s <= n:
            raise ValueError(f"need 1 <= s <= n, got s={s}")

        rep_ids = sample_representatives(n, n_reps, self.rng, scheme=self.rep_scheme)
        rep_data = self.metric.take(X, rep_ids)

        evals0 = self.metric.counter.n_evals
        # the build routine is exactly BF(R, X) with k = s (paper §4)
        dists, ids = bf_knn(
            rep_data,
            X,
            self.metric,
            k=s,
            executor=self.executor,
            recorder=recorder,
        )
        build_evals = self.metric.counter.n_evals - evals0

        lists = [row[row >= 0] for row in ids]
        list_dists = [d[np.isfinite(d)] for d in dists]
        self.s = s
        self._finish_build(X, rep_ids, lists, list_dists, build_evals)
        return self

    def query(
        self,
        Q,
        k: int = 1,
        *,
        n_probes: int = 1,
        recorder: TraceRecorder = NULL_RECORDER,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One-shot k-NN: ``BF(Q, R)`` then ``BF(q, X[L_r])`` per query.

        ``n_probes > 1`` is an extension beyond the paper: each query scans
        the lists of its ``n_probes`` nearest representatives and merges,
        improving recall at proportional cost (the natural multi-probe
        analogue the paper's distributed future-work section suggests).

        Returns ``(dist, idx)`` of shape ``(m, k)``; rows sorted ascending.
        Slots beyond the number of reachable candidates hold ``inf``/``-1``.
        """
        self._require_built()
        if k < 1 or n_probes < 1:
            raise ValueError("k and n_probes must be >= 1")
        n_probes = min(n_probes, self.n_reps)
        stats = SearchStats()

        evals0 = self.metric.counter.n_evals
        # stage 1: nearest representative(s) by brute force
        _, rep_local = bf_knn(
            Q,
            self.rep_data,
            self.metric,
            k=n_probes,
            executor=self.executor,
            recorder=recorder,
        )
        stats.stage1_evals = self.metric.counter.n_evals - evals0
        m = rep_local.shape[0]
        stats.n_queries = m

        Qb = Q if _is_batch(self.metric, Q) else self.metric._as_batch(Q)

        # stage 2: scan each chosen representative's list, grouped by rep.
        # Lists overlap under multi-probe, so a candidate can arrive through
        # several lists; carry k * n_probes merge slots so duplicates cannot
        # push a genuine neighbor past the merge window, then dedupe to k.
        kk = k * n_probes
        best_d = np.full((m, kk), np.inf)
        best_i = np.full((m, kk), EMPTY_IDX, dtype=np.int64)
        evals1 = self.metric.counter.n_evals
        with recorder.phase("oneshot:stage2"):
            for probe in range(n_probes):
                choice = rep_local[:, probe]
                for rep in np.unique(choice):
                    rows = np.flatnonzero(choice == rep)
                    cand = self.lists[rep]
                    if cand.size == 0:
                        continue
                    Qg = self.metric.take(Qb, rows)
                    D = self.metric.pairwise(Qg, self.metric.take(self.X, cand))
                    _record_dist_tile(
                        recorder,
                        self.metric,
                        rows.size,
                        cand.size,
                        self.metric.dim(self.rep_data),
                        "oneshot:stage2",
                    )
                    merge_group_topk(best_d, best_i, rows, D, cand)
                    stats.candidates_examined += int(D.size)
        stats.stage2_evals = self.metric.counter.n_evals - evals1

        if n_probes > 1:
            best_d, best_i = dedupe_rows(best_d, best_i, k)
        else:
            best_d, best_i = best_d[:, :k], best_i[:, :k]
        self.last_stats = stats
        return best_d, best_i

    # ------------------------------------------------------ dynamic updates
    def insert(self, x) -> int:
        """Insert a point into every list whose ball it falls inside.

        The point joins the (sorted) list of each representative ``r``
        with ``rho(x, r) <= psi_r``, and unconditionally joins its nearest
        representative's list (growing that radius if needed) so it is
        always reachable.  Lists may grow beyond ``s``; rebuild after
        heavy churn to restore the Theorem-2 configuration.  Returns the
        new point's global id.
        """
        self._require_built()
        self._require_vector_db("insert")
        gid = self._append_point(x)
        d = self.metric.pairwise(
            self.metric.take(self.X, [gid]), self.rep_data
        )[0]
        targets = set(np.flatnonzero(d <= self.radii).tolist())
        targets.add(int(np.argmin(d)))
        for j in targets:
            pos = int(np.searchsorted(self.list_dists[j], d[j]))
            self.lists[j] = np.insert(self.lists[j], pos, gid)
            self.list_dists[j] = np.insert(self.list_dists[j], pos, d[j])
            self.radii[j] = max(self.radii[j], float(d[j]))
        return gid

    def delete(self, gid: int) -> None:
        """Delete a point: remove it from every (overlapping) list.

        Deleting a representative keeps its list serving queries (the
        list's members are still valid neighbors); only the point itself
        stops being returned.  Rebuild to re-draw representatives.
        """
        self._require_built()
        self._require_vector_db("delete")
        gid = int(gid)
        self._tombstone(gid)
        for j in range(len(self.lists)):
            hit = np.flatnonzero(self.lists[j] == gid)
            if hit.size:
                self.lists[j] = np.delete(self.lists[j], hit[0])
                self.list_dists[j] = np.delete(self.list_dists[j], hit[0])
