"""The one-shot RBC search algorithm (paper §5.1).

Search is two brute-force calls: ``BF(q, R)`` finds each query's nearest
representative ``r``; ``BF(q, X[L_r])`` scans that representative's
ownership list and returns the nearest point found.  With the Theorem-2
parameter setting the result is the true nearest neighbor with probability
at least ``1 - delta``; otherwise the parameter ``s = |L_r|`` trades
accuracy (measured as the *rank* of the returned point — see
:mod:`repro.eval.rank`) against time, the trade-off plotted in the paper's
Figure 1.

Batch queries are grouped by their chosen representative, so the second
stage is one dense ``(group, s)`` distance block per representative — the
same matmul-like structure as the first stage, which is what makes the
algorithm effective on throughput hardware (Table 2).
"""

from __future__ import annotations

import numpy as np

from ..metrics.engine import refine_topk
from ..parallel.bruteforce import _is_batch, _record_dist_tile, bf_knn
from ..parallel.reduce import (
    EMPTY_IDX,
    dedupe_rows,
    merge_group_topk,
    merge_topk,
    topk_of_block,
)
from ..runtime.context import ExecContext
from ..simulator.trace import NULL_RECORDER, TraceRecorder
from .params import oneshot_params
from .rbc import RBCBase, sample_representatives
from .stats import SearchStats

__all__ = ["OneShotRBC"]


class OneShotRBC(RBCBase):
    """Random Ball Cover with the one-shot (high-probability) search.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import OneShotRBC
    >>> X = np.random.default_rng(0).normal(size=(2000, 8))
    >>> index = OneShotRBC(seed=0).build(X)
    >>> dist, idx = index.query(X[:5])
    >>> idx.shape
    (5, 1)
    """

    CAPS = RBCBase.CAPS.replace(exact=False)

    def build(
        self,
        X,
        n_reps: int | None = None,
        s: int | None = None,
        *,
        delta: float = 0.05,
        c: float = 1.0,
        recorder: TraceRecorder = NULL_RECORDER,
        ctx: ExecContext | None = None,
    ) -> "OneShotRBC":
        """Build the cover: sample ``R``, then one ``BF(R, X)`` call.

        If ``n_reps``/``s`` are omitted they default to the Theorem-2
        setting ``n_r = s = c sqrt(n ln 1/delta)`` for the given expansion
        rate ``c`` and failure probability ``delta``.  The build always
        computes in float64 (stored list distances and radii must stay
        exact bounds), so only ``ctx``'s transport fields — executor,
        recorder, chunking — apply here.
        """
        ctx = self._call_ctx(ctx, recorder=recorder).transport()
        n = self.metric.length(X)
        if n == 0:
            raise ValueError("database is empty")
        self._validate_input(X)
        auto_nr, auto_s = oneshot_params(n, c=c, delta=delta)
        n_reps = auto_nr if n_reps is None else n_reps
        s = auto_s if s is None else s
        if not 1 <= s <= n:
            raise ValueError(f"need 1 <= s <= n, got s={s}")

        rep_ids = sample_representatives(n, n_reps, self.rng, scheme=self.rep_scheme)
        rep_data = self.metric.take(X, rep_ids)

        evals0 = self.metric.counter.n_evals
        # the build routine is exactly BF(R, X) with k = s (paper §4)
        dists, ids = bf_knn(rep_data, X, self.metric, k=s, ctx=ctx)
        build_evals = self.metric.counter.n_evals - evals0

        lists = [row[row >= 0] for row in ids]
        list_dists = [d[np.isfinite(d)] for d in dists]
        self.s = s
        self._finish_build(X, rep_ids, lists, list_dists, build_evals)
        return self

    def warm(self, ctx: ExecContext | None = None) -> "OneShotRBC":
        """Additionally pre-computes the uniform-layout flag that gates the
        batched stage 2 (see :meth:`RBCBase.warm`)."""
        super().warm(ctx)
        self._uniform_layout()
        return self

    def _uniform_layout(self) -> tuple[int, bool]:
        """``(L, uniform)``: common list length and whether every list has
        it in tight packed storage (the batched stage-2 precondition).

        Pure function of the index state; the ``np.all`` over the lengths
        is a per-call fixed cost a one-query-at-a-time stream pays over and
        over, so it is cached per index version (``_prep`` is cleared by
        every build/insert/delete).
        """
        cached = self._prep.get("uniform_layout")
        if cached is not None:
            return cached
        packed = self._packed
        L = int(packed.lengths[0]) if packed.n_lists else 0
        uniform = (
            L > 0
            and packed.capacity == packed.total
            and bool(np.all(packed.lengths == L))
        )
        self._prep["uniform_layout"] = (L, uniform)
        return L, uniform

    def query(
        self,
        Q,
        k: int = 1,
        *,
        n_probes: int = 1,
        recorder: TraceRecorder = NULL_RECORDER,
        executor=None,
        ctx: ExecContext | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One-shot k-NN: ``BF(Q, R)`` then ``BF(q, X[L_r])`` per query.

        ``n_probes > 1`` is an extension beyond the paper: each query scans
        the lists of its ``n_probes`` nearest representatives and merges,
        improving recall at proportional cost (the natural multi-probe
        analogue the paper's distributed future-work section suggests).

        ``ctx`` (or the legacy ``recorder``/``executor`` kwargs it
        subsumes) overrides the index configuration for this call; set
        ``ctx`` fields win, then kwargs, then the index defaults.

        Returns ``(dist, idx)`` of shape ``(m, k)``; rows sorted ascending.
        Slots beyond the number of reachable candidates hold ``inf``/``-1``.
        """
        self._require_built()
        if k < 1 or n_probes < 1:
            raise ValueError("k and n_probes must be >= 1")
        n_probes = min(n_probes, self.n_reps)
        ctx = self._call_ctx(ctx, recorder=recorder, executor=executor)
        recorder = ctx.recorder
        dtype = ctx.dtype_or_default
        stats = SearchStats()
        engine = self._engine_active(ctx)
        fp32 = engine and dtype == "float32"

        evals0 = self.metric.counter.n_evals
        # stage 1: nearest representative(s) by brute force (the engine
        # passes the cached prepared representative block, so nothing about
        # R is recomputed across query batches; the prepared block's dtype
        # drives the stage-1 compute dtype, exactly as before)
        _, rep_local = bf_knn(
            Q,
            self.rep_data,
            self.metric,
            k=n_probes,
            x_prepared=self._prepared_reps(dtype) if engine else None,
            ctx=ctx.transport(),
        )
        stats.stage1_evals = self.metric.counter.n_evals - evals0
        m = rep_local.shape[0]
        stats.n_queries = m

        Qb = Q if _is_batch(self.metric, Q) else self.metric._as_batch(Q)

        qplan = self._quant_plan() if engine else None
        if qplan is not None:
            return self._query_quant(
                Qb, rep_local, k, n_probes, qplan, stats, recorder
            )

        # stage 2: scan each chosen representative's list, grouped by rep.
        # Lists overlap under multi-probe, so a candidate can arrive through
        # several lists; carry k * n_probes merge slots so duplicates cannot
        # push a genuine neighbor past the merge window, then dedupe to k.
        # The float32 path carries extra slack slots so rounding noise in
        # the low-precision scan cannot evict a true neighbor before the
        # float64 refinement re-ranks.
        kk = k * n_probes + (max(8, k) if fp32 else 0)
        best_d = np.full((m, kk), np.inf)
        best_i = np.full((m, kk), EMPTY_IDX, dtype=np.int64)
        evals1 = self.metric.counter.n_evals

        if engine:
            # prepared operands: queries coerced once, candidate lists are
            # contiguous row slices of the pre-gathered candidate matrix,
            # and squared_ok metrics rank in the squared domain
            Qp = self.metric.prepare(Qb, dtype=dtype)
            Cp = self._prepared_cands(dtype)
            packed = self._packed
            squared = self.metric.squared_ok
            itemsize = float(Qp.data.dtype.itemsize)
        else:
            squared = False

        # A fresh one-shot build gives every representative a list of
        # exactly ``s`` entries in tight packed layout, so the per-rep scan
        # collapses to ONE batched (rep, group, s) matmul plus a single
        # top-k over all groups — no per-group Python iteration at all.
        # Dynamic updates break the uniform layout; the group loop below
        # remains the general path (and the traced path: the batched kernel
        # is a pure speedup with identical results, not a new trace shape).
        L, uniform = self._uniform_layout() if engine else (0, False)
        use_batched = (
            engine
            and not recorder.enabled
            and uniform
            and (
                (squared and Cp.sqnorms is not None)
                or (not squared and Cp.norms is not None)
            )
            and getattr(self.metric, "prepared_kernel", None)
            in ("gram", "angular")
        )

        with recorder.phase("oneshot:stage2"):
            for probe in range(n_probes):
                choice = rep_local[:, probe]
                if use_batched:
                    self._stage2_batched(
                        Qp, Cp, choice, best_d, best_i, squared,
                        merge=(probe > 0),
                    )
                    self.metric.counter.add(int(m * L))
                    stats.candidates_examined += int(m * L)
                    continue
                for rep in np.unique(choice):
                    rows = np.flatnonzero(choice == rep)
                    cand = self.lists[rep]
                    if cand.size == 0:
                        continue
                    if engine:
                        lo, hi = packed.span(rep)
                        D = self.metric.pairwise_prepared(
                            Qp.take(rows), Cp.slice(lo, hi), squared=squared
                        )
                        _record_dist_tile(
                            recorder,
                            self.metric,
                            rows.size,
                            cand.size,
                            self.metric.dim(self.rep_data),
                            "oneshot:stage2",
                            itemsize=itemsize,
                        )
                    else:
                        Qg = self.metric.take(Qb, rows)
                        D = self.metric.pairwise(Qg, self.metric.take(self.X, cand))
                        _record_dist_tile(
                            recorder,
                            self.metric,
                            rows.size,
                            cand.size,
                            self.metric.dim(self.rep_data),
                            "oneshot:stage2",
                        )
                    merge_group_topk(best_d, best_i, rows, D, cand)
                    stats.candidates_examined += int(D.size)
        stats.stage2_evals = self.metric.counter.n_evals - evals1

        if squared:
            best_d = self.metric.from_squared(best_d)
        if n_probes > 1:
            best_d, best_i = dedupe_rows(best_d, best_i, kk if fp32 else k)
        if fp32:
            # exact float64 re-score of the float32-selected candidates
            best_d, best_i = refine_topk(self.metric, Qb, self.X, best_i, k)
        elif n_probes == 1:
            best_d, best_i = best_d[:, :k], best_i[:, :k]
        self.last_stats = stats
        return best_d, best_i

    def _query_quant(self, Qb, rep_local, k, n_probes, plan, stats, recorder):
        """Quantized stage 2: scan each chosen list on the decode cache,
        bound-filter, and re-rank the survivors in float64.

        Per group, the survivor set provably contains that group's true
        top-k (``bound_filter`` keeps every candidate whose lower bound
        beats the k-th smallest upper bound), and a union top-k member is
        top-k within its own group, so the re-ranked answer is
        id-identical to the unquantized one-shot scan.  Multi-probe
        overlap is removed by :func:`~repro.parallel.reduce.dedupe_rows`
        before the float64 re-rank.
        """
        from ..metrics.quantize import bound_filter

        qop = self._quant_operand(plan.quantizer)
        Qp = self.metric.prepare(Qb, dtype="float32")
        packed = self._packed
        squared = self.metric.squared_ok
        m = rep_local.shape[0]
        dim = self.metric.dim(self.rep_data)
        evals1 = self.metric.counter.n_evals
        acc_r: list[np.ndarray] = []
        acc_d: list[np.ndarray] = []
        acc_g: list[np.ndarray] = []
        with recorder.phase("oneshot:stage2"):
            for probe in range(n_probes):
                choice = rep_local[:, probe]
                for rep in np.unique(choice):
                    rows = np.flatnonzero(choice == rep)
                    cand = self.lists[rep]
                    if cand.size == 0:
                        continue
                    lo, hi = packed.span(rep)
                    D = self.metric.pairwise_prepared(
                        Qp.take(rows),
                        qop.decoded.slice(lo, hi),
                        squared=squared,
                    )
                    if squared:
                        D = self.metric.from_squared(D)
                    _record_dist_tile(
                        recorder, self.metric, rows.size, cand.size, dim,
                        "oneshot:stage2", itemsize=4.0,
                    )
                    stats.candidates_examined += int(D.size)
                    mask, _ = bound_filter(D, qop.resid[lo:hi], k)
                    flat = np.flatnonzero(mask)
                    rr, cc = np.divmod(flat, hi - lo)
                    acc_r.append(rows[rr])
                    acc_d.append(
                        D.reshape(-1)[flat].astype(np.float64, copy=False)
                    )
                    acc_g.append(cand[cc])
        stats.stage2_evals = self.metric.counter.n_evals - evals1

        best_d = np.full((m, k), np.inf)
        best_i = np.full((m, k), EMPTY_IDX, dtype=np.int64)
        if acc_r:
            r_all = np.concatenate(acc_r)
            d_all = np.concatenate(acc_d)
            g_all = np.concatenate(acc_g)
            order = np.lexsort((d_all, r_all))
            r_s = r_all[order]
            rank = np.arange(r_s.size) - np.searchsorted(
                r_s, np.arange(m + 1)
            )[r_s]
            counts = np.bincount(r_s, minlength=m)
            width = max(int(counts.max()) if counts.size else 0, 1)
            pd = np.full((m, width), np.inf)
            pi = np.full((m, width), EMPTY_IDX, dtype=np.int64)
            pd[r_s, rank] = d_all[order]
            pi[r_s, rank] = g_all[order]
            if n_probes > 1:
                pd, pi = dedupe_rows(pd, pi, width)
            best_d, best_i = refine_topk(self.metric, Qb, self.X, pi, k)
        stats.quant = {
            "strategy": "grouped",
            "quantizer": plan.quantizer,
            "backend": plan.backend,
            "code_bytes": int(qop.code_bytes),
        }
        self.last_stats = stats
        return best_d, best_i

    def _stage2_batched(
        self, Qp, Cp, choice, best_d, best_i, squared, *, merge
    ) -> None:
        """One-probe stage 2 as a single batched block-diagonal kernel.

        Queries are sorted by chosen representative and padded to the
        largest group, the uniform ``(n_reps, s, d)`` candidate tensor is a
        reshape of the packed storage, and one ``np.matmul`` over the
        ``(rep, group, s)`` batch replaces the per-representative loop.
        The per-row top-k then runs once over all groups.  Padding rows
        (repeated queries) are discarded before the write-back, so results
        are identical to the grouped loop.
        """
        if choice.size == 0:
            return
        packed = self._packed
        L = int(packed.lengths[0])
        nlists = packed.n_lists
        m, kk = best_d.shape
        dim = Qp.data.shape[1]
        kc = min(kk, L)
        order_q = np.argsort(choice, kind="stable")
        uniq, ustarts, counts = np.unique(
            choice[order_q], return_index=True, return_counts=True
        )
        seg_ids = packed.ids.reshape(nlists, L)
        C3all = Cp.data.reshape(nlists, L, dim)
        ext_all = (Cp.sqnorms if squared else Cp.norms).reshape(nlists, L)
        # representatives are bucketed by their exact group size, so every
        # batched matmul is dense — no padding rows, no wasted selection
        for cnt in np.unique(counts):
            bsel = counts == cnt
            reps_b = uniq[bsel]
            qidx = (
                ustarts[bsel][:, None] + np.arange(cnt)[None, :]
            )  # (Rb, cnt) positions in order_q
            qidx = order_q[qidx]
            G = np.matmul(
                Qp.data[qidx], C3all[reps_b].transpose(0, 2, 1)
            )  # (Rb, cnt, L)
            if squared:
                G *= -2.0
                G += Qp.sqnorms[qidx][:, :, None]
                G += ext_all[reps_b][:, None, :]
                np.maximum(G, 0.0, out=G)
            else:
                G /= Qp.norms[qidx][:, :, None] * ext_all[reps_b][:, None, :]
                np.clip(G, -1.0, 1.0, out=G)
                np.arccos(G, out=G)
            rb = reps_b.size
            d_sel, li = topk_of_block(G.reshape(rb * cnt, L), kc)
            g_sel = np.take_along_axis(
                seg_ids[reps_b][:, None, :], li.reshape(rb, cnt, kc), axis=2
            ).reshape(rb * cnt, kc)
            rows_flat = qidx.reshape(-1)
            if kc < kk:
                dpad = np.full((rows_flat.size, kk), np.inf)
                dpad[:, :kc] = d_sel
                ipad = np.full((rows_flat.size, kk), EMPTY_IDX, dtype=np.int64)
                ipad[:, :kc] = g_sel
                d_sel, g_sel = dpad, ipad
            if merge:
                nd, ni = merge_topk(
                    (best_d[rows_flat], best_i[rows_flat]), (d_sel, g_sel)
                )
                best_d[rows_flat], best_i[rows_flat] = nd, ni
            else:
                best_d[rows_flat] = d_sel
                best_i[rows_flat] = g_sel

    # ------------------------------------------------------ dynamic updates
    def insert(self, x) -> int:
        """Insert a point into every list whose ball it falls inside.

        The point joins the (sorted) list of each representative ``r``
        with ``rho(x, r) <= psi_r``, and unconditionally joins its nearest
        representative's list (growing that radius if needed) so it is
        always reachable.  Lists may grow beyond ``s``; rebuild after
        heavy churn to restore the Theorem-2 configuration.  Returns the
        new point's global id.
        """
        self._require_built()
        self._require_vector_db("insert")
        gid = self._append_point(x)
        d = self.metric.pairwise(
            self.metric.take(self.X, [gid]), self.rep_data
        )[0]
        targets = set(np.flatnonzero(d <= self.radii).tolist())
        targets.add(int(np.argmin(d)))
        for j in targets:
            pos = int(np.searchsorted(self.list_dists[j], d[j]))
            self._packed.insert(j, pos, gid, float(d[j]))
            self.radii[j] = max(self.radii[j], float(d[j]))
        return gid

    def delete(self, gid: int) -> None:
        """Delete a point: remove it from every (overlapping) list.

        Deleting a representative keeps its list serving queries (the
        list's members are still valid neighbors); only the point itself
        stops being returned.  Rebuild to re-draw representatives.
        """
        self._require_built()
        self._require_vector_db("delete")
        gid = int(gid)
        self._tombstone(gid)
        packed = self._packed
        for j in range(packed.n_lists):
            hit = np.flatnonzero(packed.ids_of(j) == gid)
            if hit.size:
                packed.delete_at(j, int(hit[0]))
