"""Index persistence: save/load a built RBC to a single ``.npz`` file.

The RBC's state is flat — representative ids, concatenated ownership
lists with offsets, radii, and the database itself — so it round-trips
through NumPy's archive format without pickling.  Only vector datasets
with registry-named metrics are supported (string/graph datasets carry
Python objects whose persistence belongs to the caller).
"""

from __future__ import annotations

import numpy as np

__all__ = ["save_index", "load_index"]

_FORMAT_VERSION = 1


def save_index(index, path) -> None:
    """Persist a built :class:`ExactRBC` or :class:`OneShotRBC`.

    Raises ``ValueError`` for unbuilt indexes, non-array databases, or
    metrics without a registry name (custom instances cannot be
    reconstructed from a file).
    """
    from .exact import ExactRBC
    from .oneshot import OneShotRBC

    if not index.is_built:
        raise ValueError("cannot save an unbuilt index")
    if not isinstance(index.X, np.ndarray):
        raise ValueError("only vector (ndarray) databases can be saved")
    from ..metrics.registry import _REGISTRY

    metric_name = None
    for name, factory in _REGISTRY.items():
        try:
            if type(factory()) is type(index.metric):
                metric_name = name
                break
        except TypeError:  # factories needing kwargs (minkowski)
            continue
    if metric_name is None:
        raise ValueError(
            f"metric {type(index.metric).__name__} has no zero-argument "
            "registry entry; cannot serialize"
        )

    if isinstance(index, ExactRBC):
        kind = "exact"
    elif isinstance(index, OneShotRBC):
        kind = "oneshot"
    else:
        raise ValueError(f"unsupported index type {type(index).__name__}")

    packed = index.packed
    offsets = np.zeros(packed.n_lists + 1, dtype=np.int64)
    np.cumsum(packed.lengths, out=offsets[1:])
    if packed.capacity == packed.total:
        # tight layout (fresh build): the packed backing arrays *are* the
        # serialized form — no per-list concatenation
        list_ids, list_dists = packed.ids, packed.dists
    elif offsets[-1]:
        # updates left slack between segments; compact the live entries
        list_ids = np.concatenate(list(packed.id_views))
        list_dists = np.concatenate(list(packed.dist_views))
    else:
        list_ids = np.empty(0, dtype=np.int64)
        list_dists = np.empty(0)
    np.savez_compressed(
        path,
        format_version=_FORMAT_VERSION,
        kind=kind,
        metric=metric_name,
        X=index.X,
        rep_ids=index.rep_ids,
        list_offsets=offsets,
        list_ids=list_ids,
        list_dists=list_dists,
        s=getattr(index, "s", -1),
        dtype=index.dtype,
    )


def load_index(path):
    """Reconstruct a saved index; returns ExactRBC or OneShotRBC."""
    from .exact import ExactRBC
    from .oneshot import OneShotRBC

    with np.load(path, allow_pickle=False) as z:
        version = int(z["format_version"])
        if version > _FORMAT_VERSION:
            raise ValueError(f"file written by a newer format (v{version})")
        kind = str(z["kind"])
        cls = {"exact": ExactRBC, "oneshot": OneShotRBC}[kind]
        # dtype knob added after v1 files without it; default is exact
        dtype = str(z["dtype"]) if "dtype" in z.files else "float64"
        index = cls(metric=str(z["metric"]), dtype=dtype)
        offsets = z["list_offsets"]
        list_ids = z["list_ids"]
        list_dists = z["list_dists"]
        lists = [
            list_ids[offsets[j] : offsets[j + 1]].copy()
            for j in range(offsets.size - 1)
        ]
        dists = [
            list_dists[offsets[j] : offsets[j + 1]].copy()
            for j in range(offsets.size - 1)
        ]
        index._finish_build(
            z["X"].copy(), z["rep_ids"].copy(), lists, dists, build_evals=0
        )
        s = int(z["s"])
        if kind == "oneshot":
            index.s = s
    return index
