"""Paper-analog dataset registry (Table 1).

Each entry mirrors one row of the paper's Table 1 in (relative) size,
ambient dimension, and intrinsic character; see DESIGN.md §1 and §4 for the
substitution rationale and the scaling rule.  ``load`` returns a database
and a disjoint query set, both deterministic for a given name/scale/seed.

=========  =========  ====  ===========================  ================
name       paper n    dim   paper source                 generator
=========  =========  ====  ===========================  ================
bio        200k       74    UCI Bio (KDD)                manifold(6) in 74-d
cov        500k       54    UCI Covertype                manifold(4) in 54-d (low intrinsic dim, per the paper)
phy        100k       78    UCI Physics (KDD)            manifold(8) in 78-d
robot      2M         21    Barrett WAM arm trace        kinematic trace, 21 features
tiny4..32  10M        4-32  Tiny Images + rand. proj.    image patches -> JL projection
=========  =========  ====  ===========================  ================

Default ``scale`` keeps the laptop benchmarks minutes-long while preserving
every size *ratio*; pass ``scale=1.0`` for paper-sized data.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from .projection import random_projection
from .synthetic import image_patches, manifold, robot_arm

__all__ = ["DatasetSpec", "DATASETS", "load", "dataset_names", "table1_rows"]

#: fraction of the paper's n generated at the default scale
DEFAULT_SCALE = 0.05


@dataclass(frozen=True)
class DatasetSpec:
    """One paper-analog dataset: identity, paper-scale size, generator."""

    name: str
    paper_n: int
    dim: int
    intrinsic_dim: int
    make: Callable[[int, int], np.ndarray]  # (n, seed) -> (n, dim) array
    description: str = ""

    def n_at(self, scale: float) -> int:
        return max(64, int(self.paper_n * scale))


def _make_bio(n: int, seed: int) -> np.ndarray:
    return manifold(n, 74, 6, noise=0.01, seed=seed)


def _make_cov(n: int, seed: int) -> np.ndarray:
    # Covertype "has low intrinsic dimensionality" (paper §7.4, citing [2])
    return manifold(n, 54, 4, noise=0.01, seed=seed)


def _make_phy(n: int, seed: int) -> np.ndarray:
    return manifold(n, 78, 8, noise=0.01, seed=seed)


def _make_robot(n: int, seed: int) -> np.ndarray:
    return robot_arm(n, n_joints=7, seed=seed)


def _make_tiny(dim: int) -> Callable[[int, int], np.ndarray]:
    def make(n: int, seed: int) -> np.ndarray:
        raw = image_patches(n, patch=16, seed=seed)
        proj, _ = random_projection(raw, dim, seed=seed + 1)
        return proj

    return make


DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec("bio", 200_000, 74, 6, _make_bio, "UCI Bio analogue"),
        DatasetSpec("cov", 500_000, 54, 4, _make_cov, "UCI Covertype analogue"),
        DatasetSpec("phy", 100_000, 78, 8, _make_phy, "UCI Physics analogue"),
        DatasetSpec("robot", 2_000_000, 21, 7, _make_robot, "Barrett WAM analogue"),
        DatasetSpec("tiny4", 10_000_000, 4, 4, _make_tiny(4), "TinyIm, 4-d proj"),
        DatasetSpec("tiny8", 10_000_000, 8, 6, _make_tiny(8), "TinyIm, 8-d proj"),
        DatasetSpec("tiny16", 10_000_000, 16, 8, _make_tiny(16), "TinyIm, 16-d proj"),
        DatasetSpec("tiny32", 10_000_000, 32, 8, _make_tiny(32), "TinyIm, 32-d proj"),
    ]
}


def dataset_names() -> list[str]:
    """Registry order matches the paper's Table 1 / figure panels."""
    return list(DATASETS)


def load(
    name: str,
    *,
    scale: float = DEFAULT_SCALE,
    n_queries: int = 1000,
    seed: int = 0,
    max_n: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate ``(X, Q)``: a database and a disjoint query set.

    Queries come from the same distribution (the paper queries held-out
    points of the same datasets).  ``max_n`` optionally caps the database
    size after scaling — used by benches whose baselines are slow.
    """
    try:
        spec = DATASETS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; available: {', '.join(DATASETS)}"
        ) from None
    if scale <= 0:
        raise ValueError("scale must be positive")
    n = spec.n_at(scale)
    if max_n is not None:
        n = min(n, max_n)
    full = spec.make(n + n_queries, seed)
    rng = np.random.default_rng(seed + 999)
    perm = rng.permutation(full.shape[0])
    return full[perm[:n]], full[perm[n : n + n_queries]]


def table1_rows(scale: float = DEFAULT_SCALE) -> list[tuple[str, int, int, int, int]]:
    """Rows of the reproduced Table 1:
    (name, paper_n, generated_n, dim, intrinsic_dim)."""
    return [
        (s.name, s.paper_n, s.n_at(scale), s.dim, s.intrinsic_dim)
        for s in DATASETS.values()
    ]
