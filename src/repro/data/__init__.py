"""Synthetic data: generators, JL projection, and the paper-analog registry."""

from .datasets import DATASETS, DatasetSpec, dataset_names, load, table1_rows
from .preprocess import Standardizer, split_database_queries, unit_normalize
from .projection import jl_dimension, random_projection
from .synthetic import (
    gaussian_mixture,
    grid_l1,
    image_patches,
    manifold,
    random_geometric_graph,
    random_strings,
    robot_arm,
    uniform_hypercube,
)

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "dataset_names",
    "load",
    "table1_rows",
    "Standardizer",
    "split_database_queries",
    "unit_normalize",
    "jl_dimension",
    "random_projection",
    "gaussian_mixture",
    "grid_l1",
    "image_patches",
    "manifold",
    "random_geometric_graph",
    "random_strings",
    "robot_arm",
    "uniform_hypercube",
]
