"""Johnson–Lindenstrauss random projection.

The paper reduces the Tiny Images descriptors with "the method of random
projections", justified by the Johnson–Lindenstrauss lemma (§7.1, footnote
3): a random linear map to ``k`` dimensions approximately preserves all
pairwise Euclidean distances with high probability, making it a useful
preprocessor for NN search.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["random_projection", "jl_dimension"]


def jl_dimension(n: int, eps: float = 0.2) -> int:
    """Target dimension sufficient for ``(1 ± eps)`` distortion over ``n``
    points, per the standard JL bound ``k >= 8 ln(n) / eps^2``."""
    if not 0 < eps < 1:
        raise ValueError("eps must lie in (0, 1)")
    if n < 2:
        raise ValueError("need at least 2 points")
    return max(1, int(math.ceil(8.0 * math.log(n) / eps**2)))


def random_projection(
    X: np.ndarray, k: int, *, seed=0
) -> tuple[np.ndarray, np.ndarray]:
    """Project ``(n, d)`` data to ``k`` dimensions with a Gaussian map.

    The map is ``G / sqrt(k)`` with ``G_ij ~ N(0, 1)``, so squared lengths
    are preserved in expectation.  Returns ``(projected, map)``; apply the
    same ``map`` to queries (``Q @ map``) so queries and database live in
    the same projected space.
    """
    X = np.atleast_2d(np.asarray(X, dtype=np.float64))
    d = X.shape[1]
    if not 1 <= k:
        raise ValueError("k must be >= 1")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    G = rng.normal(size=(d, k)) / math.sqrt(k)
    return X @ G, G
