"""Synthetic dataset generators with controllable intrinsic dimensionality.

The paper's datasets (UCI Bio/Covertype/Physics, a robot-arm trace, Tiny
Images descriptors) are not redistributable at 10M-point scale, but the RBC
theory depends on the data only through its size ``n`` and expansion rate
``c``.  These generators expose exactly those dials: points are drawn from
low-dimensional structures (manifolds, clusters, kinematic traces, smooth
image fields) embedded in a higher ambient dimension plus noise, so the
*intrinsic* dimensionality — the quantity every experiment varies — is a
parameter rather than an accident.  See DESIGN.md §1 for the substitution
argument and :mod:`repro.data.datasets` for the paper-analog registry.

All generators take an explicit ``rng`` or seed and are deterministic.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "gaussian_mixture",
    "uniform_hypercube",
    "manifold",
    "grid_l1",
    "robot_arm",
    "image_patches",
    "random_strings",
    "random_geometric_graph",
]


def _rng(seed) -> np.random.Generator:
    return seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)


def gaussian_mixture(
    n: int,
    dim: int,
    *,
    n_clusters: int = 20,
    cluster_std: float = 0.3,
    seed=0,
) -> np.ndarray:
    """Mixture of isotropic Gaussians — clustered data with low expansion
    rate at small radii (points concentrate near centers)."""
    rng = _rng(seed)
    centers = rng.normal(size=(n_clusters, dim))
    assignment = rng.integers(n_clusters, size=n)
    return centers[assignment] + cluster_std * rng.normal(size=(n, dim))


def uniform_hypercube(n: int, dim: int, *, seed=0) -> np.ndarray:
    """Uniform points in ``[0, 1]^dim`` — the worst case: intrinsic
    dimension equals ambient dimension."""
    return _rng(seed).random((n, dim))


def manifold(
    n: int,
    ambient_dim: int,
    intrinsic_dim: int,
    *,
    noise: float = 0.01,
    frequency_range: tuple[float, float] = (0.2, 0.8),
    seed=0,
) -> np.ndarray:
    """A smooth ``intrinsic_dim``-dimensional manifold embedded in
    ``ambient_dim`` dimensions.

    Latent coordinates ``t ~ U[0,1]^intrinsic_dim`` are pushed through a
    random smooth map built from sinusoids (each ambient coordinate is a
    random low-frequency function of the latents), then perturbed by
    isotropic noise.  The expansion rate of the result is governed by
    ``intrinsic_dim``, not ``ambient_dim`` — the regime the RBC theory
    (and the Cover Tree before it) targets.

    ``frequency_range`` controls how strongly the embedding folds: the map
    must stay near-injective at the nearest-neighbor scale or the
    *effective* expansion rate blows up to that of the ambient space.  The
    default keeps roughly one sine period across the latent cube, which is
    gentle enough that intrinsic dimension — not curvature — governs local
    neighborhoods at the database sizes used here.
    """
    if not 1 <= intrinsic_dim <= ambient_dim:
        raise ValueError("need 1 <= intrinsic_dim <= ambient_dim")
    rng = _rng(seed)
    t = rng.random((n, intrinsic_dim))
    freqs = rng.uniform(*frequency_range, size=(intrinsic_dim, ambient_dim))
    phases = rng.uniform(0, 2 * np.pi, size=ambient_dim)
    weights = rng.normal(size=(intrinsic_dim, ambient_dim)) / np.sqrt(intrinsic_dim)
    X = np.sin(2 * np.pi * (t @ freqs) + phases) + t @ weights
    if noise > 0:
        X = X + noise * rng.normal(size=X.shape)
    return X


def grid_l1(side: int, dim: int, *, jitter: float = 0.0, seed=0) -> np.ndarray:
    """The ``l1`` grid of Definition 1, whose expansion rate is ``2^dim``.

    Returns the ``side**dim`` lattice points (optionally jittered); used by
    the theory tests to check the expansion-rate estimator against the one
    case with a known closed form.
    """
    if side**dim > 2_000_000:
        raise ValueError("grid too large; reduce side or dim")
    axes = [np.arange(side, dtype=np.float64)] * dim
    mesh = np.meshgrid(*axes, indexing="ij")
    X = np.stack([m.ravel() for m in mesh], axis=1)
    if jitter > 0:
        X = X + _rng(seed).uniform(-jitter, jitter, size=X.shape)
    return X


def robot_arm(
    n: int,
    *,
    n_joints: int = 7,
    seed=0,
) -> np.ndarray:
    """Kinematic states of a planar ``n_joints``-link arm — the analogue of
    the paper's Barrett WAM robot data (21-dimensional, low intrinsic dim).

    A smooth random joint-space trajectory (sum of sinusoids per joint) is
    sampled; each record concatenates joint angles, joint velocities, and
    the end-effector path, giving ``3 * n_joints`` correlated features
    driven by ``n_joints`` latent degrees of freedom.
    """
    rng = _rng(seed)
    tt = np.linspace(0.0, 40.0 * np.pi, n)
    freqs = rng.uniform(0.1, 1.0, size=(n_joints, 3))
    amps = rng.uniform(0.3, 1.2, size=(n_joints, 3))
    phases = rng.uniform(0, 2 * np.pi, size=(n_joints, 3))
    angles = np.zeros((n, n_joints))
    for j in range(n_joints):
        for h in range(3):
            angles[:, j] += amps[j, h] * np.sin(freqs[j, h] * tt + phases[j, h])
    velocities = np.gradient(angles, tt, axis=0)
    # forward kinematics: cumulative angles -> unit links in the plane
    cum = np.cumsum(angles, axis=1)
    ee = np.concatenate([np.cos(cum), np.sin(cum)], axis=1)[:, : n_joints]
    return np.concatenate([angles, velocities, ee], axis=1)


def image_patches(
    n: int,
    patch: int = 16,
    *,
    n_fields: int = 64,
    seed=0,
) -> np.ndarray:
    """Patch descriptors from smooth random fields — the analogue of the
    Tiny Images descriptors the paper reduces with random projections.

    ``n_fields`` smooth 2-D "images" (low-frequency Fourier fields) are
    synthesized; patches are sampled at random positions with bilinear
    intensity, giving natural-image-like spatial correlation.  Returns
    ``(n, patch * patch)`` vectors — feed through
    :func:`repro.data.projection.random_projection` as the paper does.
    """
    rng = _rng(seed)
    size = 4 * patch
    fields = []
    yy, xx = np.mgrid[0:size, 0:size].astype(np.float64) / size
    for _ in range(n_fields):
        img = np.zeros((size, size))
        for _ in range(6):  # a few random low-frequency waves per field
            fx, fy = rng.uniform(0.5, 3.0, size=2)
            ph = rng.uniform(0, 2 * np.pi)
            amp = rng.uniform(0.3, 1.0)
            img += amp * np.sin(2 * np.pi * (fx * xx + fy * yy) + ph)
        fields.append(img)
    out = np.empty((n, patch * patch))
    field_of = rng.integers(n_fields, size=n)
    pos = rng.integers(0, size - patch, size=(n, 2))
    for i in range(n):
        f = fields[field_of[i]]
        r, c = pos[i]
        out[i] = f[r : r + patch, c : c + patch].ravel()
    return out


def random_strings(
    n: int,
    *,
    alphabet: str = "acgt",
    min_len: int = 8,
    max_len: int = 24,
    n_seeds: int = 50,
    mutation_rate: float = 0.15,
    seed=0,
) -> list[str]:
    """Strings clustered around random seed sequences under edit distance —
    a bioinformatics-flavoured workload for the general-metric demos."""
    rng = _rng(seed)
    letters = list(alphabet)
    seeds = [
        "".join(rng.choice(letters, size=rng.integers(min_len, max_len + 1)))
        for _ in range(n_seeds)
    ]
    out = []
    for _ in range(n):
        s = list(seeds[rng.integers(n_seeds)])
        i = 0
        while i < len(s):
            if rng.random() < mutation_rate:
                op = rng.integers(3)
                if op == 0:  # substitute
                    s[i] = rng.choice(letters)
                elif op == 1 and len(s) > 1:  # delete
                    del s[i]
                    continue
                else:  # insert
                    s.insert(i, rng.choice(letters))
                    i += 1
            i += 1
        out.append("".join(s))
    return out


def random_geometric_graph(
    n: int,
    *,
    radius: float | None = None,
    seed=0,
):
    """A connected random geometric graph with Euclidean edge weights —
    the substrate for the shortest-path-metric demos.

    Returns ``(graph, positions)``; the graph is guaranteed connected (the
    minimum spanning tree of the positions is unioned in).
    """
    import networkx as nx
    from scipy.spatial import cKDTree

    rng = _rng(seed)
    pos = rng.random((n, 2))
    radius = radius if radius is not None else 1.8 * np.sqrt(np.log(max(n, 2)) / n)
    tree = cKDTree(pos)
    g = nx.Graph()
    g.add_nodes_from(range(n))
    for i, j in tree.query_pairs(radius):
        g.add_edge(int(i), int(j), weight=float(np.linalg.norm(pos[i] - pos[j])))
    # ensure connectivity via the complete graph's Euclidean MST
    comp = list(nx.connected_components(g))
    while len(comp) > 1:
        a = next(iter(comp[0]))
        # connect each stray component to its nearest node outside it
        for other in comp[1:]:
            b = next(iter(other))
            g.add_edge(a, b, weight=float(np.linalg.norm(pos[a] - pos[b])))
        comp = list(nx.connected_components(g))
    return g, pos
