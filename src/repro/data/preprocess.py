"""Preprocessing utilities for vector datasets.

The UCI-style datasets of the paper's Table 1 have heterogeneous feature
scales; the usual pipeline before metric search is standardization (or
whitening via :class:`~repro.metrics.mahalanobis.Mahalanobis`), and for
angular search, unit-normalization.  These helpers are fit/transform
pairs so the *same* transformation learned on the database is applied to
queries — applying a freshly-fit transform to queries silently changes
the metric and is the classic evaluation bug.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Standardizer", "unit_normalize", "split_database_queries"]


@dataclass
class Standardizer:
    """Per-feature zero-mean/unit-variance transform (fit on the database)."""

    mean: np.ndarray
    std: np.ndarray

    @classmethod
    def fit(cls, X: np.ndarray) -> "Standardizer":
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if X.shape[0] < 2:
            raise ValueError("need at least 2 points to fit")
        std = X.std(axis=0)
        # constant features carry no metric information; mapping them to 0
        # (rather than dividing by ~0) keeps distances finite
        std = np.where(std > 0, std, 1.0)
        return cls(mean=X.mean(axis=0), std=std)

    def transform(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if X.shape[1] != self.mean.shape[0]:
            raise ValueError(
                f"fitted for d={self.mean.shape[0]}, got d={X.shape[1]}"
            )
        return (X - self.mean) / self.std

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        fitted = Standardizer.fit(X)
        self.mean, self.std = fitted.mean, fitted.std
        return self.transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        return np.atleast_2d(np.asarray(X)) * self.std + self.mean


def unit_normalize(X: np.ndarray) -> np.ndarray:
    """Project rows onto the unit sphere (for the angular metric).

    Zero rows are rejected: they have no direction.
    """
    X = np.atleast_2d(np.asarray(X, dtype=np.float64))
    norms = np.linalg.norm(X, axis=1, keepdims=True)
    if (norms == 0).any():
        raise ValueError("cannot normalize zero vectors")
    return X / norms


def split_database_queries(
    X: np.ndarray, n_queries: int, *, seed=0
) -> tuple[np.ndarray, np.ndarray]:
    """Random disjoint (database, queries) split of one point set.

    This is how every experiment in this repo obtains queries: held-out
    points of the *same* distribution (queries drawn from elsewhere have
    unbounded expansion rate jointly with the database — see
    docs/usage.md, "common pitfalls").
    """
    X = np.atleast_2d(np.asarray(X))
    if not 0 < n_queries < X.shape[0]:
        raise ValueError(
            f"need 0 < n_queries < n, got n_queries={n_queries}, n={X.shape[0]}"
        )
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    perm = rng.permutation(X.shape[0])
    return X[perm[n_queries:]], X[perm[:n_queries]]
