"""repro — Random Ball Cover nearest-neighbor search on manycore systems.

A faithful, laptop-runnable reproduction of L. Cayton, *Accelerating
Nearest Neighbor Search on Manycore Systems* (IPPS 2012 / arXiv:1103.2635):
the Random Ball Cover data structure with its one-shot and exact search
algorithms, the brute-force primitive they factor into, baselines (brute
force, Cover Tree, kd-tree, ball tree), machine models that stand in for
the paper's 48-core server and Tesla GPU, and the full evaluation suite.

Quick start::

    import numpy as np
    from repro import ExactRBC, OneShotRBC

    X = np.random.default_rng(0).normal(size=(50_000, 32))
    Q = np.random.default_rng(1).normal(size=(100, 32))

    exact = ExactRBC(metric="euclidean", seed=0).build(X)
    dist, idx = exact.query(Q, k=5)          # guaranteed exact

    fast = OneShotRBC(seed=0).build(X, n_reps=600, s=600)
    dist, idx = fast.query(Q, k=5)           # fast, high-probability

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from .baselines import BallTree, BruteForceIndex, CoverTree, KDTree
from .core import ExactRBC, OneShotRBC, oneshot_params, standard_n_reps
from .index import (
    BufferKDTree,
    Capabilities,
    Index,
    RPForest,
    Router,
    UnsupportedCapability,
    available_indexes,
    capabilities_of,
    create_index,
)
from .metrics import available_metrics, get_metric
from .obs import MetricsRegistry, SLOMonitor, Tracer
from .parallel import bf_knn, bf_nn, bf_range
from .runtime import ExecContext, RunReport, StreamReport
from .serving import (
    BatchPolicy,
    HedgePolicy,
    ShardedStreamingSearcher,
    StreamingSearcher,
)

__version__ = "1.0.0"

__all__ = [
    "BallTree",
    "BatchPolicy",
    "BruteForceIndex",
    "BufferKDTree",
    "Capabilities",
    "CoverTree",
    "Index",
    "KDTree",
    "RPForest",
    "Router",
    "UnsupportedCapability",
    "available_indexes",
    "capabilities_of",
    "create_index",
    "ExactRBC",
    "ExecContext",
    "HedgePolicy",
    "MetricsRegistry",
    "OneShotRBC",
    "RunReport",
    "SLOMonitor",
    "ShardedStreamingSearcher",
    "StreamingSearcher",
    "StreamReport",
    "Tracer",
    "oneshot_params",
    "standard_n_reps",
    "available_metrics",
    "get_metric",
    "bf_knn",
    "bf_nn",
    "bf_range",
    "__version__",
]
