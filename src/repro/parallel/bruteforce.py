"""The brute-force primitive ``BF(Q, X[L])`` (paper §3).

Everything in this package — RBC build, one-shot search, exact search — is
structured as calls to this primitive, because its two steps parallelize
like dense linear algebra:

1. **distance step** — all pairwise distances, computed tile-by-tile with
   the block decomposition of :mod:`repro.parallel.blocking` (matmul-like
   structure);
2. **comparison step** — per-query nearest (or k-nearest) selection, done as
   per-tile top-k selections merged through the inverted-binary-tree reduce
   of :mod:`repro.parallel.reduce`.

Row chunks and tiles are mapped over an :class:`~repro.parallel.pool.Executor`,
and every tile/merge is optionally recorded into a
:class:`~repro.simulator.trace.TraceRecorder` so the machine models can
replay the exact work performed.  Both are carried by an
:class:`~repro.runtime.context.ExecContext` — the legacy ``executor=`` /
``recorder=`` kwargs are thin adapters over it (explicit ``ctx`` fields
win, kwargs fill the rest).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..metrics import get_metric
from ..metrics.base import Metric, VectorMetric
from ..metrics.engine import Prepared, check_dtype, prepare_operands, refine_topk
from ..obs.tracing import NULL_TRACER, SpanContext, Tracer
from ..runtime.context import ExecContext, resolve_ctx
from ..simulator.trace import NULL_RECORDER, Op, TraceRecorder
from .blocking import choose_tile_cols, row_chunks
from .pool import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    SharedArray,
    get_executor,
    operand_store,
)
from .reduce import EMPTY_IDX, merge_topk, topk_of_block, tree_reduce
from .scheduler import plan_row_chunks

__all__ = [
    "bf_knn",
    "bf_nn",
    "bf_range",
    "bf_knn_processes",
    "register_resident_operands",
]

#: queries per row chunk; chunks are the unit mapped over the executor
_DEFAULT_ROW_CHUNK = 512


#: rows per recorded sub-op: the schedulable grain of a distance tile.
#: A dense tile is itself data-parallel (it is a GEMM), so the machine
#: models see it as independent row-band ops; the database slab's memory
#: traffic is amortized across the bands, which share it through the cache.
_RECORD_SUB_ROWS = 32


def _record_dist_tile(
    recorder: TraceRecorder,
    metric: Metric,
    rows: int,
    cols: int,
    dim: int,
    tag: str,
    itemsize: float = 8.0,
) -> None:
    if not recorder.enabled or rows <= 0 or cols <= 0:
        return
    fpe = metric.flops_per_eval(dim)
    # operand traffic scales with the compute dtype: float32 tiles move
    # half the bytes of float64 ones (the machine models care)
    slab_bytes = itemsize * cols * dim  # database slab, streamed once per tile
    done = 0
    while done < rows:
        r = min(_RECORD_SUB_ROWS, rows - done)
        recorder.record(
            Op(
                kind="gemm",
                flops=r * cols * fpe,
                bytes=itemsize * (r * dim + r * cols) + slab_bytes * (r / rows),
                vectorizable=True,
                tag=tag,
            )
        )
        done += r


def _record_select(
    recorder: TraceRecorder,
    rows: int,
    cols: int,
    tag: str,
    itemsize: float = 8.0,
) -> None:
    # the selection streams the (rows, cols) distance block once; its
    # operand traffic scales with the compute dtype, exactly like the
    # distance tiles that produced it
    if not recorder.enabled or rows <= 0 or cols <= 0:
        return
    recorder.record(
        Op(
            kind="reduce",
            flops=float(rows * cols),
            bytes=itemsize * rows * cols,
            vectorizable=True,
            tag=tag,
        )
    )


def _merge_candidates(
    candidates: list,
    m: int,
    k: int,
    recorder: TraceRecorder,
    tag: str,
    itemsize: float = 8.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Tree-merge per-tile top-k candidate blocks (recorded)."""
    if len(candidates) == 1:
        return candidates[0]
    with recorder.phase(f"{tag}:merge"):

        def merge(a, b):
            if recorder.enabled:
                # each merge reads two (m, k) candidate blocks: distances
                # at the compute itemsize plus int64 ids
                recorder.record(
                    Op(
                        kind="reduce",
                        flops=4.0 * m * k,
                        bytes=2.0 * m * k * (itemsize + 8.0),
                        vectorizable=True,
                        tag=f"{tag}:merge",
                    )
                )
            return merge_topk(a, b)

        return tree_reduce(candidates, merge)


def _knn_one_chunk(
    metric: Metric,
    Qc,
    X,
    k: int,
    tile_cols: int,
    recorder: TraceRecorder,
    dim: int,
    tag: str,
) -> tuple[np.ndarray, np.ndarray]:
    """Top-k for one row chunk of queries: tiles then tree-merge."""
    n = metric.length(X)
    m = metric.length(Qc)
    candidates = []
    with recorder.phase(f"{tag}:dist+select"):
        for lo, hi in row_chunks(n, tile_cols):
            Xt = metric.take(X, np.arange(lo, hi)) if (lo, hi) != (0, n) else X
            D = metric.pairwise(Qc, Xt)
            _record_dist_tile(recorder, metric, m, hi - lo, dim, tag)
            candidates.append(topk_of_block(D, k, col_offset=lo))
            _record_select(recorder, m, hi - lo, tag)
    return _merge_candidates(candidates, m, k, recorder, tag)


def _knn_one_chunk_prepared(
    metric: VectorMetric,
    Qp,
    Xp,
    k: int,
    tile_cols: int,
    recorder: TraceRecorder,
    dim: int,
    tag: str,
    squared: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """Engine variant of :func:`_knn_one_chunk` over prepared operands.

    Tiles are contiguous *views* of the prepared database (no gathers, no
    norm recomputation) and, for ``squared_ok`` metrics, distances stay in
    the squared domain — same ranking, so the elementwise root is deferred
    to the ``(m, k)`` result instead of the ``(m, n)`` block.
    """
    n = len(Xp)
    m = len(Qp)
    itemsize = float(Qp.data.dtype.itemsize)
    candidates = []
    with recorder.phase(f"{tag}:dist+select"):
        for lo, hi in row_chunks(n, tile_cols):
            Xt = Xp.slice(lo, hi) if (lo, hi) != (0, n) else Xp
            D = metric.pairwise_prepared(Qp, Xt, squared=squared)
            _record_dist_tile(
                recorder, metric, m, hi - lo, dim, tag, itemsize=itemsize
            )
            candidates.append(topk_of_block(D, k, col_offset=lo))
            _record_select(recorder, m, hi - lo, tag, itemsize=itemsize)
    return _merge_candidates(candidates, m, k, recorder, tag, itemsize=itemsize)


def bf_knn(
    Q,
    X,
    metric: str | Metric = "euclidean",
    k: int = 1,
    *,
    ids: np.ndarray | None = None,
    executor: str | Executor | None = None,
    tile_cols: int | None = None,
    row_chunk: int | None = None,
    recorder: TraceRecorder | None = None,
    dtype: str | None = None,
    x_prepared=None,
    refine: bool = True,
    quantizer: str | None = None,
    ctx: ExecContext | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """k nearest neighbors of each query by exhaustive search.

    Parameters
    ----------
    Q, X:
        query set and database, in whatever form ``metric`` understands
        (``(m, d)`` / ``(n, d)`` arrays for vector metrics).
    metric:
        metric name or instance.
    k:
        neighbors per query.
    ids:
        optional integer id list ``L``; restricts the search to ``X[L]``
        (the paper's ``BF(Q, X[L])``) and reports *global* indices into X.
    executor:
        ``None``/``"serial"``, ``"threads"``, ``"processes"`` or an
        :class:`Executor`; row chunks are mapped over it.  The process
        backend runs in worker processes (shared-memory operands for vector
        metrics, pickled chunks otherwise), so it requires a metric the
        workers can rebuild from the registry by name — a name string or a
        default-constructed registry instance; customized instances raise
        ``TypeError``.  Distance evaluations then happen in the workers and
        are credited to the caller's counter as one bulk update
        (``n_evals`` stays exact, ``n_calls`` becomes a single call), and
        tracing is unsupported (``ValueError`` if ``recorder`` is enabled).
    tile_cols:
        database columns per tile (auto-sized to ~8 MB of operands if None).
    recorder:
        trace recorder for the machine models.
    dtype:
        compute dtype for vector metrics — ``"float64"`` (default, exact)
        or ``"float32"`` (half the GEMM traffic; with ``refine=True`` the
        float32-selected candidates are re-scored in float64, so only the
        candidate *set* rides on low precision).
    x_prepared:
        optional :class:`~repro.metrics.engine.Prepared` form of ``X``
        (vector metrics only, incompatible with ``ids``).  Index structures
        pass their cached operands here so repeated calls against a fixed
        database recompute nothing; its dtype overrides ``dtype``.
    refine:
        float64-refine the result of a ``float32`` search (ignored for
        float64).
    quantizer:
        run the scan on compressed codes — ``"int8"``, ``"float16"`` or
        ``"pq"`` — with a certified float64 re-rank, so the answer ids
        match the uncompressed search exactly (see
        :mod:`repro.metrics.quantize`).  ``dtype="int8"`` / ``"float16"``
        are accepted as sugar for the matching quantizer.  Vector metrics
        with a ``gram``/``angular`` kernel only; in-process backends only
        (``executor="processes"`` raises — workers own plain float
        copies).
    ctx:
        optional :class:`~repro.runtime.context.ExecContext` carrying the
        same execution state as the kwargs above in one object.  Set
        ``ctx`` fields win; the legacy kwargs fill whatever it leaves
        unset, so both calling styles produce identical runs.

    Returns
    -------
    (dist, idx):
        ``(m, k)`` arrays, rows sorted ascending.  When fewer than ``k``
        points are available, trailing slots hold ``inf`` / ``-1``.
    """
    if dtype in ("int8", "float16") and quantizer is None:
        # dtype sugar: a code dtype means "scan quantized codes" (the
        # compute dtype of the certified path is fixed: float32 scan,
        # float64 re-rank)
        quantizer, dtype = dtype, None
    ctx = resolve_ctx(
        ctx,
        executor=executor,
        recorder=recorder,
        dtype=dtype,
        row_chunk=row_chunk,
        tile_cols=tile_cols,
    )
    recorder = ctx.recorder
    dtype = ctx.dtype_or_default
    row_chunk = ctx.row_chunk if ctx.row_chunk is not None else _DEFAULT_ROW_CHUNK
    metric_spec = metric
    metric = get_metric(metric)
    if k < 1:
        raise ValueError("k must be >= 1")
    check_dtype(dtype)
    if x_prepared is not None and ids is not None:
        raise ValueError(
            "x_prepared and ids are incompatible: pass a prepared operand "
            "for the restricted set instead"
        )
    Qb = Q if _is_batch(metric, Q) else metric._as_batch(Q)
    m = metric.length(Qb)
    if ids is not None:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size == 0:
            return (
                np.full((m, k), np.inf),
                np.full((m, k), EMPTY_IDX, dtype=np.int64),
            )
        X = metric.take(X, ids)
    n = metric.length(X)
    if n == 0:
        raise ValueError("database is empty")
    dim = metric.dim(X)
    tile_cols = ctx.tile_cols or choose_tile_cols(n, dim)

    if quantizer is not None:
        from ..metrics.quantize import (
            check_quantizer,
            quant_search,
            supports_quantization,
        )

        check_quantizer(quantizer)
        if ctx.uses_processes:
            raise ValueError(
                "quantized bf_knn runs in-process (worker processes own "
                "plain float copies); use executor='threads' or 'serial'"
            )
        if not isinstance(metric, VectorMetric) or not supports_quantization(
            metric
        ):
            raise ValueError(
                f"quantizer= needs a vector metric with a 'gram' or "
                f"'angular' prepared kernel; {type(metric).__name__} has "
                f"neither"
            )
        if x_prepared is not None:
            raise ValueError(
                "x_prepared and quantizer are incompatible: the quantized "
                "operand is derived from the raw database"
            )
        from ..metrics.engine import operand_cache

        # key the cache on the caller's array (quantize_prepared coerces
        # via the cached float64 parent); a fresh temporary here would
        # defeat the id()-keyed cache and re-train PQ on every call
        qop = operand_cache.get_quantized(metric, X, quantizer)
        with ctx.span("bf:knn", backend="quant", m=m, n=n, k=k,
                      quantizer=quantizer):
            dist, idx = quant_search(metric, Qb, X, qop, k)[:2]
        if dist.shape[1] < k:  # fewer live rows than k: pad like the
            pad = k - dist.shape[1]  # uncompressed path does
            dist = np.pad(dist, ((0, 0), (0, pad)), constant_values=np.inf)
            idx = np.pad(idx, ((0, 0), (0, pad)), constant_values=EMPTY_IDX)
        if ids is not None:
            mask = idx >= 0
            idx[mask] = ids[idx[mask]]
        return dist, idx

    if ctx.uses_processes:
        # Worker processes cannot unpickle the chunk closure below, so the
        # string spec is routed to module-level workers that rebuild the
        # metric by registry name.
        name = metric_spec if isinstance(metric_spec, str) else _registry_name(metric)
        if recorder.enabled:
            raise ValueError(
                "executor='processes' cannot record traces (the ops happen "
                "in worker processes); use 'threads' or 'serial' when tracing"
            )
        if dtype != "float64" or x_prepared is not None:
            raise ValueError(
                "executor='processes' supports neither float32 compute nor "
                "prepared operands (workers own their copies); use "
                "'threads' or 'serial'"
            )
        pool = ctx.executor if isinstance(ctx.executor, ProcessExecutor) else None
        with ctx.span("bf:knn", backend="processes", m=m, n=n, k=k):
            if isinstance(metric, VectorMetric):
                # a gathered ids-subset is a fresh array per call:
                # registering it would churn the resident store for zero
                # reuse
                dist, idx = bf_knn_processes(
                    Qb, X, name, k=k, n_workers=ctx.n_workers,
                    row_chunk=row_chunk, tile_cols=tile_cols, executor=pool,
                    resident=ids is None, tracer=ctx.tracer,
                )
            else:
                span_ctx = ctx.tracer.context()
                tasks = [
                    (
                        lo,
                        metric.take(Qb, np.arange(lo, hi)),
                        X, name, k, tile_cols, span_ctx,
                    )
                    for lo, hi in row_chunks(m, row_chunk)
                ]
                if pool is not None:
                    parts = pool.map(_proc_chunk_knn_pickled, tasks)
                else:
                    with get_executor("processes", ctx.n_workers) as ex:
                        parts = ex.map(_proc_chunk_knn_pickled, tasks)
                for p in parts:
                    ctx.tracer.adopt(p[3])
                parts.sort(key=lambda t: t[0])
                dist = np.concatenate([p[1] for p in parts], axis=0)
                idx = np.concatenate([p[2] for p in parts], axis=0)
        # workers evaluate every (q, x) pair; credit the caller's counter in
        # one bulk update so work accounting survives the process boundary
        metric.counter.add(m * n)
        if ids is not None:
            mask = idx >= 0
            idx[mask] = ids[idx[mask]]
        return dist, idx

    if isinstance(metric, VectorMetric):
        # engine path: prepared operands (hoisted coercion + norms) and,
        # for squared_ok metrics, squared-domain selection.  Bit-identical
        # to the plain path for the default float64 dtype.
        if x_prepared is not None:
            Xp = x_prepared
            dtype = str(Xp.dtype)
        elif ids is None and isinstance(X, np.ndarray):
            # fixed-database case: route through the process-wide cache so
            # repeated calls prepare X exactly once
            Xp = prepare_operands(metric, X, dtype=dtype)
        else:
            # transient operand (gathered subset / duck array): prepare
            # directly, don't pollute the cache with one-shot entries
            Xp = metric.prepare(X, dtype=dtype)
        Qp_full = metric.prepare(Qb, dtype=dtype)
        squared = metric.squared_ok
        fp32 = dtype == "float32"
        kk = min(n, max(2 * k, k + 8)) if (fp32 and refine) else k

        def task(chunk):
            lo, hi = chunk
            Qp = Qp_full.slice(lo, hi) if (lo, hi) != (0, m) else Qp_full
            return _knn_one_chunk_prepared(
                metric, Qp, Xp, kk, tile_cols, recorder, dim, "bf", squared
            )

    else:

        def task(chunk):
            lo, hi = chunk
            Qc = metric.take(Qb, np.arange(lo, hi)) if (lo, hi) != (0, m) else Qb
            return _knn_one_chunk(metric, Qc, X, k, tile_cols, recorder, dim, "bf")

    # one preallocated output pair per chunk plan: every task writes its
    # own row slice in place, so the tail-end concatenate (a full extra
    # copy of the result, allocated per call) disappears from the thread
    # and serial backends
    width = kk if isinstance(metric, VectorMetric) else k
    out_dtype = (
        np.float32
        if isinstance(metric, VectorMetric) and dtype == "float32"
        else np.float64
    )  # chunks land in the compute dtype; refinement re-ranks in float64
    dist = np.full((m, width), np.inf, dtype=out_dtype)
    idx = np.full((m, width), EMPTY_IDX, dtype=np.int64)

    tracer = ctx.tracer
    with tracer.span("bf:knn", m=m, n=n, k=k, dtype=dtype) as bf_span, \
            ctx.executor_scope() as exec_:
        if ctx.row_chunk is None and not isinstance(exec_, SerialExecutor):
            # no explicit chunking: let the scheduler size chunks to the
            # pool (static split for small inputs, dynamic oversubscription
            # for large ones) instead of a fixed one-size row count
            chunks = plan_row_chunks(m, exec_.n_workers)
        else:
            chunks = row_chunks(m, row_chunk)
        bf_span.set(backend=type(exec_).__name__, chunks=len(chunks))

        def traced_task(chunk, _parent=tracer.context()):
            # worker threads start with an empty span stack; parent their
            # chunk spans under the submitting bf:knn span explicitly
            with tracer.span_under(
                _parent, "bf:chunk", lo=chunk[0], hi=chunk[1]
            ):
                return task(chunk)

        run = task if not tracer.enabled else traced_task

        def run_into(chunk):
            d, i = run(chunk)
            lo, hi = chunk
            dist[lo:hi] = d
            idx[lo:hi] = i

        if len(chunks) == 1 or isinstance(exec_, SerialExecutor):
            for c in chunks:
                run_into(c)
        else:
            exec_.map(run_into, chunks)

    if isinstance(metric, VectorMetric):
        if squared:
            dist = metric.from_squared(dist)
        if fp32 and refine:
            dist, idx = refine_topk(metric, Qb, X, idx, k)
    if ids is not None:
        mask = idx >= 0
        idx[mask] = ids[idx[mask]]
    return dist, idx


def _is_batch(metric: Metric, Q) -> bool:
    """Heuristic: is Q already a batch (vs a single point)?"""
    if isinstance(Q, np.ndarray):
        return Q.ndim >= 2 or not np.issubdtype(Q.dtype, np.floating)
    if isinstance(Q, str):
        return False
    return True


def bf_nn(
    Q, X, metric: str | Metric = "euclidean", **kwargs
) -> tuple[np.ndarray, np.ndarray]:
    """1-NN convenience wrapper: returns ``(m,)`` distance and index arrays."""
    dist, idx = bf_knn(Q, X, metric, k=1, **kwargs)
    return dist[:, 0], idx[:, 0]


def bf_range(
    Q,
    X,
    eps: float,
    metric: str | Metric = "euclidean",
    *,
    ids: np.ndarray | None = None,
    tile_cols: int | None = None,
    recorder: TraceRecorder | None = None,
    dtype: str | None = None,
    ctx: ExecContext | None = None,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """ε-range search: all database points within distance ``eps`` of each
    query.  Returns, per query, ``(dist, idx)`` sorted by distance.

    With ``dtype="float32"`` (vector metrics) the scan runs in float32 with
    a slack-widened threshold and every candidate hit is verified with the
    exact float64 distance, so the reported set and values match the
    float64 search up to genuinely borderline points within float32 noise
    of ``eps``.

    An :class:`~repro.runtime.context.ExecContext` can carry the recorder,
    dtype and tile sizing instead of the individual kwargs (set ``ctx``
    fields win, kwargs fill the rest).  The scan itself is a single pass,
    so the context's executor is not consulted here.
    """
    ctx = resolve_ctx(ctx, recorder=recorder, dtype=dtype, tile_cols=tile_cols)
    recorder = ctx.recorder
    dtype = ctx.dtype_or_default
    tile_cols = ctx.tile_cols
    metric = get_metric(metric)
    if eps < 0:
        raise ValueError("eps must be non-negative")
    check_dtype(dtype)
    if ids is not None:
        ids = np.asarray(ids, dtype=np.int64)
        X = metric.take(X, ids)
    n = metric.length(X)
    dim = metric.dim(X)
    tile_cols = tile_cols or choose_tile_cols(n, dim)
    Qb = Q if _is_batch(metric, Q) else metric._as_batch(Q)
    m = metric.length(Qb)

    engine = isinstance(metric, VectorMetric)
    if engine:
        if ids is None and isinstance(X, np.ndarray):
            Xp = prepare_operands(metric, X, dtype=dtype)
        else:
            Xp = metric.prepare(X, dtype=dtype)
        Qp = metric.prepare(Qb, dtype=dtype)
        itemsize = float(Qp.data.dtype.itemsize)
        fp32 = dtype == "float32"
        # float32 scan keeps everything within relative slack of eps; the
        # exact float64 re-check below restores the true boundary
        eps_scan = eps * (1.0 + 1e-5) + 1e-6 if fp32 else eps
    else:
        fp32 = False

    hits_d: list[list[np.ndarray]] = [[] for _ in range(m)]
    hits_i: list[list[np.ndarray]] = [[] for _ in range(m)]
    with recorder.phase("bf-range:dist"):
        for lo, hi in row_chunks(n, tile_cols):
            if engine:
                Xt = Xp.slice(lo, hi) if (lo, hi) != (0, n) else Xp
                D = metric.pairwise_prepared(Qp, Xt)
                _record_dist_tile(
                    recorder, metric, m, hi - lo, dim, "bf-range",
                    itemsize=itemsize,
                )
                rows, cols = np.nonzero(D <= eps_scan)
            else:
                Xt = metric.take(X, np.arange(lo, hi)) if (lo, hi) != (0, n) else X
                D = metric.pairwise(Qb, Xt)
                _record_dist_tile(recorder, metric, m, hi - lo, dim, "bf-range")
                rows, cols = np.nonzero(D <= eps)
            for r in np.unique(rows):
                sel = cols[rows == r]
                if fp32:
                    # exact float64 verification of the float32 candidates
                    # (against the original rows — prepared data may be
                    # transformed, e.g. Mahalanobis)
                    d = metric.pairwise(
                        metric.take(Qb, [r]), metric.take(X, sel + lo)
                    )[0]
                    keep = d <= eps
                    hits_d[r].append(d[keep])
                    hits_i[r].append(sel[keep] + lo)
                else:
                    hits_d[r].append(D[r, sel])
                    hits_i[r].append(sel + lo)

    out = []
    for r in range(m):
        if hits_d[r]:
            d = np.concatenate(hits_d[r])
            i = np.concatenate(hits_i[r]).astype(np.int64)
            order = np.argsort(d, kind="stable")
            d, i = d[order], i[order]
        else:
            d = np.empty(0)
            i = np.empty(0, dtype=np.int64)
        if ids is not None:
            i = ids[i]
        out.append((d, i))
    return out


# --------------------------------------------------------------- processes
def _state_equal(a, b) -> bool:
    if a is b:
        return True
    try:
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            return bool(np.array_equal(a, b))
        return bool(a == b)
    except Exception:
        return False


def _registry_name(metric: Metric) -> str:
    """Name under which worker processes can rebuild ``metric``.

    Only default-constructed registry metrics qualify: the workers rebuild
    the metric from the registry by name, so a metric that is not registered
    (``GraphMetric``) or carries customized state (``Minkowski(p=3)``,
    ``Mahalanobis(VI)``) would silently compute different distances.
    """
    name = getattr(metric, "name", "")
    try:
        fresh = get_metric(name)
    except (ValueError, TypeError):
        fresh = None
    if fresh is None or type(fresh) is not type(metric):
        raise TypeError(
            f"executor='processes' requires a metric that worker processes "
            f"can rebuild from the registry by name; "
            f"{type(metric).__name__} is not a registry metric — pass the "
            f"metric's registry name, or use executor='threads'"
        )
    mine = {k: v for k, v in vars(metric).items() if k != "counter"}
    theirs = {k: v for k, v in vars(fresh).items() if k != "counter"}
    if mine.keys() != theirs.keys() or not all(
        _state_equal(mine[k], theirs[k]) for k in mine
    ):
        raise TypeError(
            f"executor='processes' cannot ship customized "
            f"{type(metric).__name__} state to worker processes; pass the "
            f"registry name for a default-constructed metric, or use "
            f"executor='threads'"
        )
    return name


def _worker_tracer(span_ctx: SpanContext | None) -> Tracer:
    """A tracer for one worker task: children of the submitting span.

    The submitting span's identity rides the pickled task payload as a
    :class:`~repro.obs.tracing.SpanContext`; the worker's spans are minted
    in its own pid namespace, parented under the submitter, and returned
    (as dicts) with the task result for the parent tracer to adopt.
    """
    return Tracer(root=span_ctx) if span_ctx is not None else NULL_TRACER


def _proc_chunk_knn_pickled(args) -> tuple[int, np.ndarray, np.ndarray, list]:
    """Process-pool worker for non-vector metrics: operands travel pickled."""
    lo, Qc, X, metric_name, k, tile_cols, span_ctx = args
    metric = get_metric(metric_name)
    wtracer = _worker_tracer(span_ctx)
    with wtracer.span("bf:chunk", lo=lo, rows=metric.length(Qc)):
        dist, idx = _knn_one_chunk(
            metric, Qc, X, k, tile_cols, NULL_RECORDER, metric.dim(X), "bf"
        )
    return lo, dist, idx, wtracer.export() if wtracer.enabled else []


def _proc_chunk_knn(args) -> tuple[int, np.ndarray, np.ndarray, list]:
    """Process-pool worker: top-k for one row chunk from shared memory."""
    qh, xh, lo, hi, metric_name, k, tile_cols, span_ctx = args
    Q = qh.open()
    X = xh.open()
    metric = get_metric(metric_name)
    wtracer = _worker_tracer(span_ctx)
    with wtracer.span("bf:chunk", lo=lo, hi=hi):
        dist, idx = _knn_one_chunk(
            metric, Q[lo:hi], X, k, tile_cols, NULL_RECORDER, X.shape[1], "bf"
        )
    qh.close()
    xh.close()
    return lo, dist, idx, wtracer.export() if wtracer.enabled else []


def _as_shared_f64(A) -> np.ndarray:
    """The canonical shared-memory operand form (and store-identity key)."""
    return np.ascontiguousarray(np.atleast_2d(np.asarray(A, dtype=np.float64)))


def register_resident_operands(metric, X: np.ndarray, *, version: int = 0) -> dict:
    """Register ``X``'s prepared float64 operands in the process-wide
    :data:`~repro.parallel.pool.operand_store`.

    One shared-memory copy of the metric-prepared data plus its hoisted
    per-row terms (norms) per ``(metric, array, version)`` — repeated
    process-backend calls against the same database then ship only the
    returned picklable handles, and resident workers keep their
    attachments.  Serving front-ends call this once per index epoch (and
    ``operand_store.release_for(X)`` on teardown).
    """
    metric = get_metric(metric)

    def build(arr):
        p = metric.prepare(arr, dtype="float64")
        return {"data": p.data, "sqnorms": p.sqnorms, "norms": p.norms}

    return operand_store.get(metric.cache_token(), X, version=version, build=build)


#: worker-side attachment cache: data-segment name -> (handles, Prepared).
#: Resident workers serve many calls; re-attaching (and rebuilding the
#: Prepared views) per task would throw away exactly the residency the
#: store buys.  Bounded FIFO; eviction closes the attachments.
_ATTACH_MAX = 8
_attach_cache: OrderedDict = OrderedDict()


def _attach_prepared(handles: dict) -> Prepared:
    key = handles["data"].name
    ent = _attach_cache.get(key)
    if ent is None:
        opened = {name: h.open() for name, h in handles.items()}
        ent = (
            handles,
            Prepared(
                opened["data"], opened.get("sqnorms"), opened.get("norms")
            ),
        )
        _attach_cache[key] = ent
        while len(_attach_cache) > _ATTACH_MAX:
            old, _ = _attach_cache.popitem(last=False)
            for h in old.values():
                h.close()
    else:
        _attach_cache.move_to_end(key)
    return ent[1]


def _proc_chunk_knn_resident(args) -> tuple[int, np.ndarray, np.ndarray]:
    """Process-pool worker over store-resident prepared operands.

    The database arrives as operand-store handles: data and norms are
    attached once per worker (cached across tasks), so nothing about the
    database is copied, pickled, or recomputed per call.  ``squared_ok``
    metrics select in the squared domain with the root deferred to the
    ``(chunk, k)`` result, exactly like the in-process engine path.
    """
    qh, handles, lo, hi, metric_name, k, tile_cols, span_ctx = args
    metric = get_metric(metric_name)
    wtracer = _worker_tracer(span_ctx)
    with wtracer.span("bf:chunk", lo=lo, hi=hi, resident=True):
        Xp = _attach_prepared(handles)
        Q = qh.open()
        Qp = metric.prepare(Q[lo:hi], dtype=str(Xp.dtype))
        squared = metric.squared_ok
        dist, idx = _knn_one_chunk_prepared(
            metric, Qp, Xp, k, tile_cols, NULL_RECORDER,
            Xp.data.shape[1], "bf", squared,
        )
        if squared:
            dist = metric.from_squared(dist)
    qh.close()
    return lo, dist, idx, wtracer.export() if wtracer.enabled else []


def bf_knn_processes(
    Q: np.ndarray,
    X: np.ndarray,
    metric: str = "euclidean",
    k: int = 1,
    *,
    n_workers: int | None = None,
    row_chunk: int = _DEFAULT_ROW_CHUNK,
    tile_cols: int | None = None,
    executor: Executor | None = None,
    resident: bool = True,
    tracer: Tracer = NULL_TRACER,
) -> tuple[np.ndarray, np.ndarray]:
    """Process-parallel ``bf_knn`` for vector metrics.

    With ``resident=True`` (default) the database's prepared operands live
    in the :data:`~repro.parallel.pool.operand_store`: the shared-memory
    copy and the norm hoist happen once per ``(metric, database)``, task
    payloads carry only handles, and resident workers keep their
    attachments across calls — so a query stream pays O(query) per call,
    not O(database).  ``resident=False`` restores the transient per-call
    segments (used for one-shot gathered subsets).  Only the query block
    is ever copied per call.

    Distance evaluations happen in worker processes and are *not*
    reflected in the parent's metric counters
    (``bf_knn(..., executor="processes")`` credits them in bulk).  An
    already-running :class:`ProcessExecutor` can be passed as ``executor``
    to reuse its pool; it is left open.  String-spec pools come from the
    process-wide :class:`~repro.parallel.pool.ExecutorPool` registry and
    stay warm between calls.
    """
    if not isinstance(metric, str):
        raise TypeError("process backend needs a registry metric name")
    Q = _as_shared_f64(Q)
    X = _as_shared_f64(X)
    tile_cols = tile_cols or choose_tile_cols(X.shape[0], X.shape[1])
    # the submitting span's ids ride the pickled payloads; worker spans
    # come back in the results and are adopted into the caller's timeline
    span_ctx = tracer.context() if tracer.enabled else None
    qh = SharedArray.from_array(Q)
    xh = None
    try:
        if resident:
            handles = register_resident_operands(get_metric(metric), X)
            worker = _proc_chunk_knn_resident
            tasks = [
                (qh, handles, lo, hi, metric, k, tile_cols, span_ctx)
                for lo, hi in row_chunks(Q.shape[0], row_chunk)
            ]
        else:
            xh = SharedArray.from_array(X)
            worker = _proc_chunk_knn
            tasks = [
                (qh, xh, lo, hi, metric, k, tile_cols, span_ctx)
                for lo, hi in row_chunks(Q.shape[0], row_chunk)
            ]
        if executor is not None:
            parts = executor.map(worker, tasks)
        else:
            with get_executor("processes", n_workers) as ex:
                parts = ex.map(worker, tasks)
    finally:
        qh.unlink()
        if xh is not None:
            xh.unlink()
    for p in parts:
        tracer.adopt(p[3])
    parts.sort(key=lambda t: t[0])
    dist = np.concatenate([p[1] for p in parts], axis=0)
    idx = np.concatenate([p[2] for p in parts], axis=0)
    return dist, idx
