"""Block decomposition of pairwise-distance computations.

The distance step of ``BF(Q, X)`` is an ``(m, n)`` dense computation with
the structure of matrix-matrix multiply (paper §3), so the standard block
decomposition applies: the output is cut into tiles, each tile is an
independent unit of work, and tiles are distributed over workers.  The tile
shape bounds the temporary working set (a cache-locality concern — see the
"beware of cache effects" guidance this repo follows) and sets the
parallelism grain.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Tile", "grid_tiles", "row_chunks", "choose_tile_cols"]


@dataclass(frozen=True)
class Tile:
    """A rectangular block ``[row_lo:row_hi) x [col_lo:col_hi)`` of the
    pairwise-distance output."""

    row_lo: int
    row_hi: int
    col_lo: int
    col_hi: int

    @property
    def rows(self) -> int:
        return self.row_hi - self.row_lo

    @property
    def cols(self) -> int:
        return self.col_hi - self.col_lo

    @property
    def size(self) -> int:
        return self.rows * self.cols

    def __post_init__(self) -> None:
        if not (0 <= self.row_lo < self.row_hi and 0 <= self.col_lo < self.col_hi):
            raise ValueError(f"degenerate tile {self!r}")


def row_chunks(m: int, chunk: int) -> list[tuple[int, int]]:
    """Split ``range(m)`` into ``[lo, hi)`` chunks of at most ``chunk`` rows."""
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    return [(lo, min(lo + chunk, m)) for lo in range(0, m, chunk)]


def grid_tiles(m: int, n: int, tile_rows: int, tile_cols: int) -> list[Tile]:
    """Regular 2-D tiling of an ``(m, n)`` output."""
    if m < 1 or n < 1:
        return []
    out = []
    for rlo, rhi in row_chunks(m, tile_rows):
        for clo, chi in row_chunks(n, tile_cols):
            out.append(Tile(rlo, rhi, clo, chi))
    return out


def choose_tile_cols(
    n: int, dim: int, *, target_bytes: int = 8 << 20, min_cols: int = 256
) -> int:
    """Pick a column-tile width so a tile's operands fit in ~``target_bytes``.

    The distance kernel touches ``tile_cols * dim`` database floats plus the
    ``rows * tile_cols`` output block; sizing for the database slab keeps the
    kernel within last-level cache for realistic dims.
    """
    if n < 1:
        return min_cols
    cols = target_bytes // (8 * max(dim, 1))
    return int(min(n, max(min_cols, cols)))
