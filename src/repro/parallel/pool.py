"""Execution backends: serial, threaded, and shared-memory process pools.

The brute-force primitive maps independent row/tile tasks over one of these
executors.  Three backends are provided because the right one is
platform-dependent:

* :class:`SerialExecutor` — deterministic reference; also fastest for small
  inputs where pool dispatch dominates.
* :class:`ThreadExecutor` — NumPy's kernels (BLAS GEMM, ufunc loops) release
  the GIL, so the dense distance tiles genuinely run concurrently under
  threads; this is the analogue of the paper's OpenMP CPU implementation.
* :class:`ProcessExecutor` — full process parallelism for workloads with
  Python-level inner loops (e.g. the edit-distance kernel); large operands
  should be passed through :class:`SharedArray` to avoid per-task pickling.

All executors share a two-method protocol (``map``, ``close``) plus a
``n_workers`` attribute, so algorithms are backend-agnostic.

Two process-wide registries make repeated calls against a fixed workload
cheap enough to serve a query stream:

* :class:`ExecutorPool` — live thread/process pools keyed by
  ``(backend, n_workers)``.  ``get_executor`` resolves string specs through
  it, so back-to-back runs reuse the same warm workers instead of paying
  pool construction (and, for processes, interpreter spawn) per call.
  Registry-owned pools ignore ``close()``; :meth:`ExecutorPool.shutdown`
  (also registered ``atexit``) really terminates them.
* :class:`OperandStore` — :class:`SharedArray`-backed operands (dataset
  plus hoisted norms) registered once per dataset epoch and addressed by
  picklable handles in task payloads, so process workers attach by name
  instead of receiving pickled copies per task.
"""

from __future__ import annotations

import atexit
import os
import threading
import weakref
from collections import OrderedDict
from collections.abc import Callable, Iterable
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "SharedArray",
    "ExecutorPool",
    "executor_pool",
    "OperandStore",
    "operand_store",
    "get_executor",
    "executor_scope",
    "default_workers",
]


def default_workers() -> int:
    """Worker count used when none is given (all visible CPUs)."""
    return max(os.cpu_count() or 1, 1)


class Executor:
    """Minimal executor protocol; subclasses run ``map`` their own way."""

    n_workers: int = 1

    def map(self, fn: Callable, items: Iterable) -> list:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - default no-op
        pass

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialExecutor(Executor):
    """Run tasks inline, in order.  The reference backend."""

    n_workers = 1

    def map(self, fn: Callable, items: Iterable) -> list:
        return [fn(item) for item in items]


class ThreadExecutor(Executor):
    """Thread-pool backend; effective for GIL-releasing NumPy kernels."""

    def __init__(self, n_workers: int | None = None) -> None:
        self.n_workers = n_workers or default_workers()
        self._pool = ThreadPoolExecutor(max_workers=self.n_workers)

    def map(self, fn: Callable, items: Iterable) -> list:
        return list(self._pool.map(fn, items))

    def close(self) -> None:
        self._pool.shutdown(wait=True)


class ProcessExecutor(Executor):
    """Process-pool backend for Python-level-parallel workloads.

    ``fn`` and each item must be picklable; use :class:`SharedArray` to pass
    large read-only arrays by name rather than by value.
    """

    def __init__(self, n_workers: int | None = None) -> None:
        self.n_workers = n_workers or default_workers()
        self._pool = ProcessPoolExecutor(max_workers=self.n_workers)

    def map(self, fn: Callable, items: Iterable) -> list:
        return list(self._pool.map(fn, items))

    def close(self) -> None:
        self._pool.shutdown(wait=True)


class _ResidentThread(ThreadExecutor):
    """Registry-owned thread pool: scopes may not close it, only the
    registry's :meth:`ExecutorPool.shutdown` does."""

    def close(self) -> None:
        pass

    def shutdown(self) -> None:
        ThreadExecutor.close(self)


class _ResidentProcess(ProcessExecutor):
    """Registry-owned process pool (see :class:`_ResidentThread`)."""

    def close(self) -> None:
        pass

    def shutdown(self) -> None:
        ProcessExecutor.close(self)


class ExecutorPool:
    """Process-wide registry of live executors keyed by ``(backend, n_workers)``.

    ``get_executor`` used to build a fresh pool on every string spec — a
    full ``ProcessPoolExecutor`` spawn per ``bf_knn(executor="processes")``
    call.  The registry keeps one warm pool per key and hands it out
    repeatedly; returned pools ignore ``close()`` (so the existing
    ``with``-scoped call sites need no changes) and are really terminated
    by :meth:`shutdown`, which is also registered ``atexit``.

    A registered pool that has broken (a worker died) or was shut down
    out-of-band fails the health check and is transparently replaced.
    """

    _CLASSES = {"threads": _ResidentThread, "processes": _ResidentProcess}

    def __init__(self) -> None:
        self._pools: dict[tuple[str, int], Executor] = {}
        self._lock = threading.Lock()
        #: pools constructed over the registry's lifetime (reuse observable)
        self.n_created = 0

    @staticmethod
    def _healthy(pool: Executor) -> bool:
        inner = getattr(pool, "_pool", None)
        if inner is None:
            return False
        if getattr(inner, "_broken", False):
            return False
        if getattr(inner, "_shutdown", False):  # ThreadPoolExecutor
            return False
        if getattr(inner, "_shutdown_thread", False):  # ProcessPoolExecutor
            return False
        return True

    def get(self, backend: str, n_workers: int | None = None) -> Executor:
        """A live resident pool for the spec, creating it at most once."""
        cls = self._CLASSES.get(backend)
        if cls is None:
            raise ValueError(f"unknown executor backend {backend!r}")
        key = (backend, int(n_workers or default_workers()))
        with self._lock:
            pool = self._pools.get(key)
            if pool is not None and self._healthy(pool):
                return pool
            pool = cls(key[1])
            self._pools[key] = pool
            self.n_created += 1
            return pool

    def shutdown(self) -> None:
        """Terminate every registered pool (idempotent)."""
        with self._lock:
            pools = list(self._pools.values())
            self._pools.clear()
        for pool in pools:
            pool.shutdown()

    def __len__(self) -> int:
        with self._lock:
            return len(self._pools)


#: the process-wide executor registry behind ``get_executor`` string specs
executor_pool = ExecutorPool()
atexit.register(executor_pool.shutdown)


@dataclass
class SharedArray:
    """A NumPy array backed by POSIX shared memory, addressable by name.

    The creating process calls :meth:`from_array` and eventually
    :meth:`unlink`; workers call :meth:`open` with the (picklable) handle
    and see the same pages with zero copies.
    """

    name: str
    shape: tuple[int, ...]
    dtype: str

    _shm: shared_memory.SharedMemory | None = None

    @classmethod
    def from_array(cls, arr: np.ndarray) -> "SharedArray":
        arr = np.ascontiguousarray(arr)
        shm = shared_memory.SharedMemory(create=True, size=max(arr.nbytes, 1))
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
        view[...] = arr
        out = cls(name=shm.name, shape=tuple(arr.shape), dtype=str(arr.dtype))
        out._shm = shm
        return out

    def open(self) -> np.ndarray:
        """Attach and return a read-write view (workers treat it read-only)."""
        if self._shm is None:
            self._shm = shared_memory.SharedMemory(name=self.name)
        return np.ndarray(self.shape, dtype=self.dtype, buffer=self._shm.buf)

    def close(self) -> None:
        if self._shm is not None:
            self._shm.close()
            self._shm = None

    def unlink(self) -> None:
        """Release the segment (creator-side cleanup)."""
        shm = self._shm or shared_memory.SharedMemory(name=self.name)
        shm.close()
        shm.unlink()
        self._shm = None

    def __getstate__(self):
        return {"name": self.name, "shape": self.shape, "dtype": self.dtype}

    def __setstate__(self, state):
        self.name = state["name"]
        self.shape = state["shape"]
        self.dtype = state["dtype"]
        self._shm = None


def get_executor(
    executor: str | Executor | None, n_workers: int | None = None
) -> Executor:
    """Resolve an executor spec: ``None`` / ``"serial"`` / ``"threads"`` /
    ``"processes"`` or an existing instance (passed through).

    String specs resolve through the process-wide :data:`executor_pool`
    registry, so back-to-back calls with the same spec reuse one live pool
    (and, for processes, the same resident workers) instead of spinning a
    fresh one up per call.  Registry pools ignore ``close()``; use
    ``executor_pool.shutdown()`` to really terminate them.
    """
    if executor is None or executor == "serial":
        return SerialExecutor()
    if isinstance(executor, Executor):
        return executor
    if executor in ("threads", "processes"):
        return executor_pool.get(executor, n_workers)
    raise ValueError(f"unknown executor {executor!r}")


@contextmanager
def executor_scope(
    executor: str | Executor | None, n_workers: int | None = None
):
    """Resolve an executor spec for the duration of one ``with`` block.

    Ownership is decided once, here: an :class:`Executor` instance passed
    in belongs to the caller and is left open, while a pool resolved from a
    spec (``None`` or a backend name) comes from the :data:`executor_pool`
    registry and *survives* the block — its ``close()`` is a no-op, so the
    same warm workers serve the next identical spec.  Exceptions inside the
    block leave the resident pool usable; a pool broken by a dead worker is
    replaced on the next resolution.
    """
    exec_ = get_executor(executor, n_workers)
    owns = not isinstance(executor, Executor)
    try:
        yield exec_
    finally:
        if owns:
            exec_.close()


# ------------------------------------------------------------ operand store
class _StoreEntry:
    __slots__ = ("ref", "version", "handles")

    def __init__(self, ref, version, handles) -> None:
        self.ref = ref
        self.version = version
        self.handles = handles


def _unlink_handles(handles: dict) -> None:
    for h in handles.values():
        try:
            h.unlink()
        except FileNotFoundError:
            pass  # already released by another path


class OperandStore:
    """Process-wide registry of shared-memory operands for fixed datasets.

    The process backend used to ship its operands per *call*: every
    ``bf_knn_processes`` placed the whole database in fresh shared memory,
    let the workers attach, and unlinked it on the way out — an O(n d)
    copy plus worker re-attachment per query batch, and the hoisted norms
    were recomputed from scratch in every worker.  The store registers a
    dataset's prepared operands (data plus norms, as named
    :class:`SharedArray` segments) once per dataset epoch; task payloads
    then carry only the picklable handles, and resident workers keep their
    attachments across calls.

    Keying mirrors :class:`~repro.metrics.engine.OperandCache`:
    ``(token, id(array))`` plus a caller-supplied version stamp, with a
    weak reference to detect id recycling — a dead or restamped entry is
    unlinked and rebuilt.  The referent's death also unlinks eagerly (via
    the weakref callback), :meth:`release_for` drops a dataset explicitly,
    and :meth:`clear` (registered ``atexit``) guarantees no orphaned
    ``/dev/shm`` segments outlive the process.  Entries are LRU-bounded;
    eviction unlinks.  Like the operand cache, in-place mutation of a
    registered array requires a version bump (the index classes do this).
    """

    def __init__(self, max_entries: int = 8) -> None:
        self._entries: OrderedDict[tuple, _StoreEntry] = OrderedDict()
        self._lock = threading.Lock()
        self.max_entries = int(max_entries)
        #: registrations performed (each is one shared-memory copy)
        self.n_registered = 0
        #: calls served by an existing registration
        self.n_hits = 0

    def get(
        self,
        token,
        X: np.ndarray,
        *,
        version: int = 0,
        build: Callable[[np.ndarray], dict],
    ) -> dict:
        """Handles for ``X``'s operands, registering them at most once.

        ``build(X)`` returns the named operand arrays (e.g. ``{"data": X,
        "sqnorms": ...}``); each is copied into a :class:`SharedArray`
        exactly once per ``(token, array, version)``.  The returned dict of
        handles is picklable and safe to embed in task payloads.
        """
        key = (token, id(X))
        with self._lock:
            ent = self._entries.get(key)
            if ent is not None:
                if ent.ref() is X and ent.version == version:
                    self._entries.move_to_end(key)
                    self.n_hits += 1
                    return ent.handles
                del self._entries[key]
                _unlink_handles(ent.handles)
        arrays = build(X)
        handles = {
            name: SharedArray.from_array(arr)
            for name, arr in arrays.items()
            if arr is not None
        }

        def _on_dead(_ref, _handles=handles):
            # the source array died: its id may be recycled, so the
            # segments can never be validly served again — release now.
            # GC may fire this on a thread already holding the lock, so
            # only drop the table entry opportunistically; a survivor is
            # detected (dead ref) and removed by the next lookup anyway.
            _unlink_handles(_handles)
            if self._lock.acquire(blocking=False):
                try:
                    self._entries.pop(key, None)
                finally:
                    self._lock.release()

        try:
            ref = weakref.ref(X, _on_dead)
        except TypeError:  # non-weakrefable operand: serve, don't register
            return handles
        evicted: list[dict] = []
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                evicted.append(old.handles)
            self._entries[key] = _StoreEntry(ref, version, handles)
            self.n_registered += 1
            while len(self._entries) > self.max_entries:
                evicted.append(self._entries.popitem(last=False)[1].handles)
        for h in evicted:
            _unlink_handles(h)
        return handles

    def release_for(self, X) -> int:
        """Unlink every registration of ``X``; returns the count dropped."""
        target = id(X)
        with self._lock:
            victims = [k for k in self._entries if k[1] == target]
            dropped = [self._entries.pop(k) for k in victims]
        for ent in dropped:
            _unlink_handles(ent.handles)
        return len(dropped)

    def segment_names(self) -> list[str]:
        """Names of every shared-memory segment currently registered."""
        with self._lock:
            return [
                h.name
                for ent in self._entries.values()
                for h in ent.handles.values()
            ]

    def segments_for(self, X) -> list[str]:
        """Names of the segments registered for ``X`` (leak-test probe)."""
        target = id(X)
        with self._lock:
            return [
                h.name
                for key, ent in self._entries.items()
                if key[1] == target
                for h in ent.handles.values()
            ]

    def clear(self) -> None:
        """Unlink everything (idempotent; registered ``atexit``)."""
        with self._lock:
            dropped = list(self._entries.values())
            self._entries.clear()
        for ent in dropped:
            _unlink_handles(ent.handles)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: the process-wide resident-operand registry used by the process backend
operand_store = OperandStore()
atexit.register(operand_store.clear)
