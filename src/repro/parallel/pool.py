"""Execution backends: serial, threaded, and shared-memory process pools.

The brute-force primitive maps independent row/tile tasks over one of these
executors.  Three backends are provided because the right one is
platform-dependent:

* :class:`SerialExecutor` — deterministic reference; also fastest for small
  inputs where pool dispatch dominates.
* :class:`ThreadExecutor` — NumPy's kernels (BLAS GEMM, ufunc loops) release
  the GIL, so the dense distance tiles genuinely run concurrently under
  threads; this is the analogue of the paper's OpenMP CPU implementation.
* :class:`ProcessExecutor` — full process parallelism for workloads with
  Python-level inner loops (e.g. the edit-distance kernel); large operands
  should be passed through :class:`SharedArray` to avoid per-task pickling.

All executors share a two-method protocol (``map``, ``close``) plus a
``n_workers`` attribute, so algorithms are backend-agnostic.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "SharedArray",
    "get_executor",
    "executor_scope",
    "default_workers",
]


def default_workers() -> int:
    """Worker count used when none is given (all visible CPUs)."""
    return max(os.cpu_count() or 1, 1)


class Executor:
    """Minimal executor protocol; subclasses run ``map`` their own way."""

    n_workers: int = 1

    def map(self, fn: Callable, items: Iterable) -> list:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - default no-op
        pass

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialExecutor(Executor):
    """Run tasks inline, in order.  The reference backend."""

    n_workers = 1

    def map(self, fn: Callable, items: Iterable) -> list:
        return [fn(item) for item in items]


class ThreadExecutor(Executor):
    """Thread-pool backend; effective for GIL-releasing NumPy kernels."""

    def __init__(self, n_workers: int | None = None) -> None:
        self.n_workers = n_workers or default_workers()
        self._pool = ThreadPoolExecutor(max_workers=self.n_workers)

    def map(self, fn: Callable, items: Iterable) -> list:
        return list(self._pool.map(fn, items))

    def close(self) -> None:
        self._pool.shutdown(wait=True)


class ProcessExecutor(Executor):
    """Process-pool backend for Python-level-parallel workloads.

    ``fn`` and each item must be picklable; use :class:`SharedArray` to pass
    large read-only arrays by name rather than by value.
    """

    def __init__(self, n_workers: int | None = None) -> None:
        self.n_workers = n_workers or default_workers()
        self._pool = ProcessPoolExecutor(max_workers=self.n_workers)

    def map(self, fn: Callable, items: Iterable) -> list:
        return list(self._pool.map(fn, items))

    def close(self) -> None:
        self._pool.shutdown(wait=True)


@dataclass
class SharedArray:
    """A NumPy array backed by POSIX shared memory, addressable by name.

    The creating process calls :meth:`from_array` and eventually
    :meth:`unlink`; workers call :meth:`open` with the (picklable) handle
    and see the same pages with zero copies.
    """

    name: str
    shape: tuple[int, ...]
    dtype: str

    _shm: shared_memory.SharedMemory | None = None

    @classmethod
    def from_array(cls, arr: np.ndarray) -> "SharedArray":
        arr = np.ascontiguousarray(arr)
        shm = shared_memory.SharedMemory(create=True, size=max(arr.nbytes, 1))
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
        view[...] = arr
        out = cls(name=shm.name, shape=tuple(arr.shape), dtype=str(arr.dtype))
        out._shm = shm
        return out

    def open(self) -> np.ndarray:
        """Attach and return a read-write view (workers treat it read-only)."""
        if self._shm is None:
            self._shm = shared_memory.SharedMemory(name=self.name)
        return np.ndarray(self.shape, dtype=self.dtype, buffer=self._shm.buf)

    def close(self) -> None:
        if self._shm is not None:
            self._shm.close()
            self._shm = None

    def unlink(self) -> None:
        """Release the segment (creator-side cleanup)."""
        shm = self._shm or shared_memory.SharedMemory(name=self.name)
        shm.close()
        shm.unlink()
        self._shm = None

    def __getstate__(self):
        return {"name": self.name, "shape": self.shape, "dtype": self.dtype}

    def __setstate__(self, state):
        self.name = state["name"]
        self.shape = state["shape"]
        self.dtype = state["dtype"]
        self._shm = None


def get_executor(
    executor: str | Executor | None, n_workers: int | None = None
) -> Executor:
    """Resolve an executor spec: ``None`` / ``"serial"`` / ``"threads"`` /
    ``"processes"`` or an existing instance (passed through)."""
    if executor is None or executor == "serial":
        return SerialExecutor()
    if isinstance(executor, Executor):
        return executor
    if executor == "threads":
        return ThreadExecutor(n_workers)
    if executor == "processes":
        return ProcessExecutor(n_workers)
    raise ValueError(f"unknown executor {executor!r}")


@contextmanager
def executor_scope(
    executor: str | Executor | None, n_workers: int | None = None
):
    """Resolve an executor spec for the duration of one ``with`` block.

    Ownership is decided once, here: a pool created from a spec (``None``
    or a backend name) is closed when the block exits — normally *or by
    exception* — while an :class:`Executor` instance passed in belongs to
    the caller and is left open.  This replaces the hand-rolled
    ``get_executor`` / ``owns_exec`` / ``try/finally close`` dance, which
    leaked the pool when an exception fired between resolution and the
    ``try``.
    """
    exec_ = get_executor(executor, n_workers)
    owns = not isinstance(executor, Executor)
    try:
        yield exec_
    finally:
        if owns:
            exec_.close()
