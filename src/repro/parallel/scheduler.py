"""Work-distribution policies for tiles and chunks.

The machine-model experiments need the *assignment* of work to workers, not
just the work list, so these schedulers are pure functions from task costs
to per-worker assignments.  Two classic policies are provided:

* :func:`static_assign` — contiguous equal-count split, the OpenMP
  ``schedule(static)`` analogue; zero scheduling overhead, suffers from
  imbalance when task costs vary (the exact-search second stage has
  query-dependent candidate-list sizes, making this the interesting case).
* :func:`lpt_assign` — longest-processing-time list scheduling, the
  idealized dynamic/work-stealing analogue (4/3-approximate makespan).
"""

from __future__ import annotations

from collections.abc import Sequence

import heapq

__all__ = ["static_assign", "lpt_assign", "makespan", "plan_row_chunks"]


def static_assign(n_tasks: int, n_workers: int) -> list[list[int]]:
    """Contiguous near-equal split of task ids over workers."""
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    base, extra = divmod(n_tasks, n_workers)
    out: list[list[int]] = []
    start = 0
    for w in range(n_workers):
        count = base + (1 if w < extra else 0)
        out.append(list(range(start, start + count)))
        start += count
    return out


def lpt_assign(costs: Sequence[float], n_workers: int) -> list[list[int]]:
    """Longest-processing-time-first assignment by task cost."""
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    order = sorted(range(len(costs)), key=lambda i: -costs[i])
    heap = [(0.0, w) for w in range(n_workers)]
    heapq.heapify(heap)
    out: list[list[int]] = [[] for _ in range(n_workers)]
    for i in order:
        load, w = heapq.heappop(heap)
        out[w].append(i)
        heapq.heappush(heap, (load + float(costs[i]), w))
    return out


def makespan(assignment: list[list[int]], costs: Sequence[float]) -> float:
    """Completion time of an assignment: the max per-worker cost sum."""
    if not assignment:
        return 0.0
    return max(sum(float(costs[i]) for i in tasks) for tasks in assignment)


def plan_row_chunks(
    m: int,
    n_workers: int,
    *,
    grain: int = 512,
    oversubscribe: int = 4,
    min_chunk: int = 32,
) -> list[tuple[int, int]]:
    """Row-chunk schedule for mapping ``m`` query rows over ``n_workers``.

    The thread-backend ``bf_knn`` used to cut a fixed 512-row chunk
    regardless of the pool width; this chooses between the two classic
    policies above by rows-per-worker:

    * **static** (``schedule(static)``): when each worker's share is at
      most ``grain`` rows, one contiguous chunk per worker — minimal
      dispatch overhead, and the near-equal split keeps imbalance at one
      row;
    * **dynamic**: for larger inputs, ``oversubscribe`` chunks per worker
      so the pool load-balances uneven progress, with chunks clamped to
      ``[min_chunk, grain]`` so they stay worth dispatching but never
      starve the tail.

    Chunks partition ``range(m)`` contiguously in order, so results
    concatenate positionally exactly like ``row_chunks`` output.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    if m <= 0:
        return []
    if n_workers == 1 or m <= min_chunk:
        return [(0, m)]
    per_worker = -(-m // n_workers)  # ceil
    if per_worker <= grain:
        return [
            (tasks[0], tasks[-1] + 1)
            for tasks in static_assign(m, n_workers)
            if tasks
        ]
    chunk = -(-m // (oversubscribe * n_workers))
    chunk = max(min_chunk, min(grain, chunk))
    return [(lo, min(lo + chunk, m)) for lo in range(0, m, chunk)]
