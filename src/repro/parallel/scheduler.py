"""Work-distribution policies for tiles and chunks.

The machine-model experiments need the *assignment* of work to workers, not
just the work list, so these schedulers are pure functions from task costs
to per-worker assignments.  Two classic policies are provided:

* :func:`static_assign` — contiguous equal-count split, the OpenMP
  ``schedule(static)`` analogue; zero scheduling overhead, suffers from
  imbalance when task costs vary (the exact-search second stage has
  query-dependent candidate-list sizes, making this the interesting case).
* :func:`lpt_assign` — longest-processing-time list scheduling, the
  idealized dynamic/work-stealing analogue (4/3-approximate makespan).
"""

from __future__ import annotations

from collections.abc import Sequence

import heapq

__all__ = ["static_assign", "lpt_assign", "makespan"]


def static_assign(n_tasks: int, n_workers: int) -> list[list[int]]:
    """Contiguous near-equal split of task ids over workers."""
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    base, extra = divmod(n_tasks, n_workers)
    out: list[list[int]] = []
    start = 0
    for w in range(n_workers):
        count = base + (1 if w < extra else 0)
        out.append(list(range(start, start + count)))
        start += count
    return out


def lpt_assign(costs: Sequence[float], n_workers: int) -> list[list[int]]:
    """Longest-processing-time-first assignment by task cost."""
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    order = sorted(range(len(costs)), key=lambda i: -costs[i])
    heap = [(0.0, w) for w in range(n_workers)]
    heapq.heapify(heap)
    out: list[list[int]] = [[] for _ in range(n_workers)]
    for i in order:
        load, w = heapq.heappop(heap)
        out[w].append(i)
        heapq.heappush(heap, (load + float(costs[i]), w))
    return out


def makespan(assignment: list[list[int]], costs: Sequence[float]) -> float:
    """Completion time of an assignment: the max per-worker cost sum."""
    if not assignment:
        return 0.0
    return max(sum(float(costs[i]) for i in tasks) for tasks in assignment)
