"""Parallel-reduce building blocks for the comparison step of ``BF``.

The second step of the brute-force primitive compares distances and keeps
the nearest element(s); the paper plugs it into "the standard parallel-
reduce paradigm where comparisons are made according to an inverted binary
tree" (§3).  :func:`tree_reduce` implements exactly that shape — pairwise
merge rounds, each round's merges independent — and :func:`merge_topk` is
the associative merge operation on ``(distances, indices)`` candidate sets.

Candidate sets are padded with ``+inf`` distance / ``-1`` index so that
merging lists of uneven length is total; padding never displaces a real
candidate because real distances are finite.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import TypeVar

import numpy as np

__all__ = [
    "tree_reduce",
    "merge_topk",
    "topk_of_block",
    "merge_group_topk",
    "dedupe_rows",
    "EMPTY_IDX",
]

T = TypeVar("T")

#: index used for padding slots that hold no candidate
EMPTY_IDX = -1


def tree_reduce(
    items: Sequence[T],
    merge: Callable[[T, T], T],
    *,
    executor=None,
) -> T:
    """Reduce ``items`` with an inverted binary tree of ``merge`` calls.

    With an executor, each round's merges are submitted concurrently; the
    number of rounds is ``ceil(log2(len(items)))``.  ``merge`` must be
    associative (commutativity is not required: operand order is preserved).
    """
    if len(items) == 0:
        raise ValueError("cannot reduce zero items")
    level = list(items)
    while len(level) > 1:
        pairs = [(level[i], level[i + 1]) for i in range(0, len(level) - 1, 2)]
        carry = [level[-1]] if len(level) % 2 else []
        if executor is not None and len(pairs) > 1:
            merged = list(executor.map(lambda ab: merge(ab[0], ab[1]), pairs))
        else:
            merged = [merge(a, b) for a, b in pairs]
        level = merged + carry
    return level[0]


def topk_of_block(
    D: np.ndarray, k: int, col_offset: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row k smallest entries of a distance block.

    Returns ``(dist, idx)`` of shape ``(m, k)``, sorted ascending per row,
    padded with ``inf``/``EMPTY_IDX`` when the block has fewer than ``k``
    columns.  ``col_offset`` shifts returned indices into the caller's
    global column numbering.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    m, n = D.shape
    kk = min(k, n)
    if kk < n:
        part = np.argpartition(D, kk - 1, axis=1)[:, :kk]
    else:
        part = np.broadcast_to(np.arange(n), (m, n)).copy()
    pd = np.take_along_axis(D, part, axis=1)
    order = np.argsort(pd, axis=1, kind="stable")
    idx = np.take_along_axis(part, order, axis=1) + col_offset
    dist = np.take_along_axis(pd, order, axis=1)
    if kk < k:
        dist = np.pad(dist, ((0, 0), (0, k - kk)), constant_values=np.inf)
        idx = np.pad(idx, ((0, 0), (0, k - kk)), constant_values=EMPTY_IDX)
    return dist, idx.astype(np.int64, copy=False)


def merge_topk(
    a: tuple[np.ndarray, np.ndarray], b: tuple[np.ndarray, np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Associative merge of two ``(dist, idx)`` candidate sets.

    Both operands have shape ``(m, k)`` with rows sorted ascending; the
    result keeps the ``k`` overall-smallest per row, sorted.  This is the
    merge node of the inverted binary tree.
    """
    da, ia = a
    db, ib = b
    if da.shape != db.shape:
        raise ValueError(f"shape mismatch {da.shape} vs {db.shape}")
    k = da.shape[1]
    D = np.concatenate([da, db], axis=1)
    ids = np.concatenate([ia, ib], axis=1)
    order = np.argsort(D, axis=1, kind="stable")[:, :k]
    return np.take_along_axis(D, order, axis=1), np.take_along_axis(ids, order, axis=1)


def merge_group_topk(
    best_d: np.ndarray,
    best_i: np.ndarray,
    rows: np.ndarray,
    D: np.ndarray,
    cand_ids: np.ndarray,
    n_valid: np.ndarray | None = None,
) -> None:
    """Fold one group's distance block into the running per-query top-k.

    The grouped-scan step shared by the RBC searches: queries ``rows`` (an
    index array into ``best_d``/``best_i``) were scanned together against
    the candidate set ``cand_ids``, producing the dense block ``D`` of shape
    ``(len(rows), len(cand_ids))``.  The block's per-row top-k is selected,
    mapped to global ids, and merged into ``best_d[rows]``/``best_i[rows]``
    in place (``best_*`` have ``k`` columns; rows stay sorted ascending).

    ``n_valid`` supports ragged groups scanned as one padded block: row
    ``t`` only genuinely owns the first ``n_valid[t]`` columns, and the
    caller must have set the padded entries of ``D`` to ``+inf``.  Selected
    entries beyond a row's valid count are converted to ``inf``/``EMPTY_IDX``
    padding instead of being reported as candidates.
    """
    k = best_d.shape[1]
    d, li = topk_of_block(D, k)
    if n_valid is not None:
        invalid = li >= np.asarray(n_valid)[:, None]
        d = np.where(invalid, np.inf, d)
        li = np.where(invalid, EMPTY_IDX, li)
    gi = np.where(li >= 0, cand_ids[np.clip(li, 0, None)], EMPTY_IDX)
    best_d[rows], best_i[rows] = merge_topk((best_d[rows], best_i[rows]), (d, gi))


def dedupe_rows(
    d: np.ndarray, i: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Drop duplicate indices per sorted candidate row, keeping the nearest.

    Needed when candidate sources overlap (one-shot multi-probe lists, or
    exact search's representative seeds vs ownership lists); freed slots
    are refilled with ``inf``/``EMPTY_IDX`` padding at the row tail.

    Fully vectorized — this sits on the per-micro-batch merge path of the
    sharded streaming searcher.  A duplicate is any id already seen
    earlier in its row, so on rows sorted ascending by distance the kept
    copy is the nearest one (and for equal ids the earliest — i.e. the
    tie at the smaller distance — survives, same as the scan order of the
    original per-row loop).
    """
    m, w = d.shape
    out_d = np.full((m, k), np.inf)
    out_i = np.full((m, k), EMPTY_IDX, dtype=i.dtype)
    if w == 0:
        return out_d, out_i
    # a slot is a duplicate iff the same id occurs at an earlier column of
    # its row: stable-sort each row by id, compare neighbors, scatter the
    # verdicts back to the original column positions
    order = np.argsort(i, axis=1, kind="stable")
    si = np.take_along_axis(i, order, axis=1)
    dup_sorted = np.zeros((m, w), dtype=bool)
    dup_sorted[:, 1:] = si[:, 1:] == si[:, :-1]
    dup = np.zeros((m, w), dtype=bool)
    np.put_along_axis(dup, order, dup_sorted, axis=1)
    valid = (i != EMPTY_IDX) & ~dup
    # compact the survivors left: each keeps its rank among its row's
    # survivors as the output column, dropping everything past k
    pos = np.cumsum(valid, axis=1) - 1
    keep = valid & (pos < k)
    r, c = np.nonzero(keep)
    out_d[r, pos[r, c]] = d[r, c]
    out_i[r, pos[r, c]] = i[r, c]
    return out_d, out_i
