"""The brute-force primitive and its parallel machinery (paper §3)."""

from .blocking import Tile, choose_tile_cols, grid_tiles, row_chunks
from .bruteforce import (
    bf_knn,
    bf_knn_processes,
    bf_nn,
    bf_range,
    register_resident_operands,
)
from .pool import (
    Executor,
    ExecutorPool,
    OperandStore,
    ProcessExecutor,
    SerialExecutor,
    SharedArray,
    ThreadExecutor,
    default_workers,
    executor_pool,
    get_executor,
    operand_store,
)
from .reduce import EMPTY_IDX, merge_topk, topk_of_block, tree_reduce
from .scheduler import lpt_assign, makespan, plan_row_chunks, static_assign

__all__ = [
    "Tile",
    "choose_tile_cols",
    "grid_tiles",
    "row_chunks",
    "bf_knn",
    "bf_knn_processes",
    "bf_nn",
    "bf_range",
    "register_resident_operands",
    "Executor",
    "ExecutorPool",
    "OperandStore",
    "ProcessExecutor",
    "SerialExecutor",
    "SharedArray",
    "ThreadExecutor",
    "default_workers",
    "executor_pool",
    "get_executor",
    "operand_store",
    "EMPTY_IDX",
    "merge_topk",
    "topk_of_block",
    "tree_reduce",
    "lpt_assign",
    "makespan",
    "plan_row_chunks",
    "static_assign",
]
