"""The brute-force primitive and its parallel machinery (paper §3)."""

from .blocking import Tile, choose_tile_cols, grid_tiles, row_chunks
from .bruteforce import bf_knn, bf_knn_processes, bf_nn, bf_range
from .pool import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    SharedArray,
    ThreadExecutor,
    default_workers,
    get_executor,
)
from .reduce import EMPTY_IDX, merge_topk, topk_of_block, tree_reduce
from .scheduler import lpt_assign, makespan, static_assign

__all__ = [
    "Tile",
    "choose_tile_cols",
    "grid_tiles",
    "row_chunks",
    "bf_knn",
    "bf_knn_processes",
    "bf_nn",
    "bf_range",
    "Executor",
    "ProcessExecutor",
    "SerialExecutor",
    "SharedArray",
    "ThreadExecutor",
    "default_workers",
    "get_executor",
    "EMPTY_IDX",
    "merge_topk",
    "topk_of_block",
    "tree_reduce",
    "lpt_assign",
    "makespan",
    "static_assign",
]
