"""Optional numba JIT backend for the quantized scan kernels.

The numpy fallback in :mod:`repro.metrics.quantize` scans a float32
*decode cache* — BLAS speed, but it still moves 4 bytes per dimension.
When numba is importable, the scans here read the 1-byte codes directly:

* ``int8``  — the inner product against the codes with the per-dimension
  scale folded into the *query* (``q' = q * scale``), so the hot loop is
  a pure ``float32 x int8`` multiply-accumulate over a 4x smaller
  operand;
* ``pq``   — asymmetric distance computation: per query, one 256-entry
  table per subspace, the scan a table-gather per code byte.

``float16`` stays on the decoded path everywhere (neither numpy BLAS nor
numba's CPU target runs half-precision kernels worth using).

The backend is chosen by :func:`kernel_backend`: the
``REPRO_KERNEL_BACKEND`` environment variable (``auto``/``numpy``/
``numba``) or :func:`set_kernel_backend`, defaulting to numba exactly
when it imports.  Everything degrades transparently — requesting
``numba`` without the dependency silently runs the numpy path, so the
same code (and the same answers: both backends feed the same certified
re-rank) runs on a bare-numpy install.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "HAVE_NUMBA",
    "kernel_backend",
    "set_kernel_backend",
    "scan_codes_block",
]

try:  # pragma: no cover - exercised on the CI numba matrix leg
    from numba import njit, prange

    HAVE_NUMBA = True
except Exception:  # pragma: no cover - the bare-numpy default
    HAVE_NUMBA = False

    def njit(*args, **kwargs):  # transparent no-op decorator
        def wrap(fn):
            return fn

        if args and callable(args[0]):
            return args[0]
        return wrap

    def prange(*args):
        return range(*args)


_backend_override: str | None = None


def set_kernel_backend(name: str | None) -> None:
    """Force the scan backend (``"numpy"``/``"numba"``/``None`` = auto).

    A process-wide override for tests and experiments; takes precedence
    over ``REPRO_KERNEL_BACKEND``.
    """
    if name is not None and name not in ("numpy", "numba", "auto"):
        raise ValueError(
            f"backend must be 'numpy', 'numba' or 'auto', got {name!r}"
        )
    global _backend_override
    _backend_override = None if name in (None, "auto") else name


def kernel_backend(kind: str | None = None) -> str:
    """The effective scan backend, optionally for a specific code kind.

    ``float16`` always reports ``"numpy"`` (storage-only kind); other
    kinds report ``"numba"`` iff the import succeeded and neither the
    override nor ``REPRO_KERNEL_BACKEND`` forces numpy.
    """
    if kind == "float16":
        return "numpy"
    choice = _backend_override or os.environ.get(
        "REPRO_KERNEL_BACKEND", "auto"
    )
    if choice == "numba":
        return "numba" if HAVE_NUMBA else "numpy"
    if choice == "numpy":
        return "numpy"
    return "numba" if HAVE_NUMBA else "numpy"


# --------------------------------------------------------------- kernels
@njit(parallel=True, fastmath=True, cache=True)
def _ip_int8(qs, codes, out):  # pragma: no cover - needs numba
    """out[i, j] = sum_t qs[i, t] * codes[j, t] (codes int8, qs float32)."""
    m, d = qs.shape
    n = codes.shape[0]
    for j in prange(n):
        for i in range(m):
            acc = np.float32(0.0)
            for t in range(d):
                acc += qs[i, t] * np.float32(codes[j, t])
            out[i, j] = acc


@njit(parallel=True, fastmath=True, cache=True)
def _adc_pq(tabs, codes, out):  # pragma: no cover - needs numba
    """out[i, j] = sum_m tabs[i, m, codes[j, m]] (ADC table gather)."""
    m = tabs.shape[0]
    n, n_sub = codes.shape
    for j in prange(n):
        for i in range(m):
            acc = np.float32(0.0)
            for s in range(n_sub):
                acc += tabs[i, s, codes[j, s]]
            out[i, j] = acc


def _pq_tables(qop, q32, q2, angular: bool) -> np.ndarray:
    """Per-query ADC tables ``(m, M, 256)`` in float32.

    For ``gram`` kernels entry ``[i, s, c]`` is the squared distance of
    query subvector ``s`` to centroid ``c``; summed over subspaces that
    is the full squared distance to the decoded row.  For ``angular``
    it is the (negated) partial inner product; the per-row
    renormalization is applied by the caller via ``inv_norm``.
    """
    cb = qop.codebooks  # (M, K, d_sub) float64
    n_sub, k_cb, d_sub = cb.shape
    m = len(q32)
    qsub = q32.astype(np.float64).reshape(m, n_sub, d_sub)
    if angular:
        # negated partial IPs: summing gives -q.dec (before renorm)
        tabs = -np.einsum("msd,skd->msk", qsub, cb)
    else:
        tabs = (
            (qsub**2).sum(axis=2)[:, :, None]
            - 2.0 * np.einsum("msd,skd->msk", qsub, cb)
            + (cb**2).sum(axis=2)[None, :, :]
        )
    return np.ascontiguousarray(tabs, dtype=np.float32)


def scan_codes_block(qop, q32, q2):
    """One approximate scan block straight off the codes, or ``None``.

    Returns the same score convention as the numpy path (squared
    distances for ``gram``, negated similarities for ``angular``) so the
    certified selection downstream is backend-agnostic.  ``None`` means
    "no JIT kernel for this kind/backend" — the caller falls back to the
    decoded-cache GEMM.
    """
    if not HAVE_NUMBA:
        return None
    angular = qop.kernel.startswith("angular")
    n = len(qop.codes)
    m = len(q32)
    out = np.empty((m, n), dtype=np.float32)
    if qop.kind == "int8":
        qs = np.ascontiguousarray(q32 * qop.scale[None, :], dtype=np.float32)
        _ip_int8(qs, qop.codes, out)
        if angular:
            out *= qop.inv_norm[None, :]
            np.negative(out, out)
        else:
            # ||q - dec||^2 = q2 - 2 q.dec + ||dec||^2; the kernel holds
            # q.dec (scale folded into q), finish with the hoisted terms
            out *= -2.0
            out += q2[:, None]
            out += qop.decoded.sqnorms[None, :]
            np.maximum(out, 0.0, out=out)
        return out
    if qop.kind == "pq":
        tabs = _pq_tables(qop, q32, q2, angular)
        _adc_pq(tabs, qop.codes, out)
        if angular:
            # tables hold -q.dec; flip sign order: S = -(q.dec * inv_norm)
            out *= qop.inv_norm[None, :]
        else:
            np.maximum(out, 0.0, out=out)
        return out
    return None  # float16: storage-only, always the decoded path
