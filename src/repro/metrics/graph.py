"""Shortest-path graph metric.

The expansion-rate definition "makes sense for ... the shortest path distance
on the nodes of a graph" (paper §6).  This metric lets the RBC index the
nodes of a weighted undirected graph under the shortest-path metric, which is
a genuine metric whenever the graph is connected and the weights are
positive.

Distances are served from an all-pairs matrix computed once with SciPy's
``shortest_path`` (Dijkstra per source over the CSR adjacency), so a
``pairwise`` call is a fancy-index — the appropriate trade for the
database-resident node sets the RBC targets.  Datasets are integer node-id
arrays, which makes ``take`` (the ``X[L]`` operation) trivially cheap.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
from scipy.sparse.csgraph import shortest_path

from .base import Metric

__all__ = ["GraphMetric"]


class GraphMetric(Metric):
    """Shortest-path metric over the nodes of a weighted undirected graph."""

    name = "graph-shortest-path"
    is_true_metric = True
    flops_per_eval_coeff = 1.0  # a lookup, not a computation

    def __init__(self, graph: nx.Graph, weight: str = "weight") -> None:
        super().__init__()
        if graph.number_of_nodes() == 0:
            raise ValueError("graph is empty")
        if not nx.is_connected(graph):
            raise ValueError(
                "shortest-path distance is a metric only on connected graphs"
            )
        for _, _, data in graph.edges(data=True):
            if data.get(weight, 1.0) <= 0:
                raise ValueError("edge weights must be positive")
        self.graph = graph
        #: node object -> row index in the distance matrix
        self.node_index: dict = {v: i for i, v in enumerate(graph.nodes())}
        self.nodes = list(graph.nodes())
        adj = nx.to_scipy_sparse_array(graph, weight=weight, format="csr")
        self._D = shortest_path(adj, method="D", directed=False)

    # ------------------------------------------------------------ dataset ops
    def node_ids(self, nodes=None) -> np.ndarray:
        """Translate node objects into the integer ids datasets consist of."""
        if nodes is None:
            return np.arange(len(self.nodes), dtype=np.intp)
        return np.asarray([self.node_index[v] for v in nodes], dtype=np.intp)

    def length(self, X) -> int:
        return len(np.atleast_1d(np.asarray(X)))

    def take(self, X, idx):
        return np.atleast_1d(np.asarray(X, dtype=np.intp))[
            np.asarray(idx, dtype=np.intp)
        ]

    def dim(self, X) -> int:
        return 1

    def _as_batch(self, x):
        return np.atleast_1d(np.asarray(x, dtype=np.intp))

    # ------------------------------------------------------------ the kernel
    def _pairwise(self, Q, X) -> np.ndarray:
        Qi = np.atleast_1d(np.asarray(Q, dtype=np.intp))
        Xi = np.atleast_1d(np.asarray(X, dtype=np.intp))
        return self._D[np.ix_(Qi, Xi)]
