"""Name-based metric registry.

Lets the public API accept ``metric="euclidean"`` style arguments while the
internals work against :class:`~repro.metrics.base.Metric` instances.  Each
``get_metric`` call returns a *fresh* instance so distance-evaluation
counters are never shared across structures.
"""

from __future__ import annotations

from collections.abc import Callable

from .base import Metric
from .edit import EditDistance
from .lp import Chebyshev, Cosine, Euclidean, Hamming, Manhattan, Minkowski, SqEuclidean

__all__ = ["get_metric", "register_metric", "available_metrics"]

_REGISTRY: dict[str, Callable[[], Metric]] = {
    "euclidean": Euclidean,
    "l2": Euclidean,
    "sqeuclidean": SqEuclidean,
    "manhattan": Manhattan,
    "l1": Manhattan,
    "cityblock": Manhattan,
    "chebyshev": Chebyshev,
    "linf": Chebyshev,
    "angular": Cosine,
    "cosine": Cosine,
    "hamming": Hamming,
    "levenshtein": EditDistance,
    "edit": EditDistance,
    "minkowski": Minkowski,
}


def register_metric(name: str, factory: Callable[[], Metric]) -> None:
    """Register a zero-argument metric factory under ``name``."""
    key = name.lower()
    if key in _REGISTRY:
        raise ValueError(f"metric name already registered: {name!r}")
    _REGISTRY[key] = factory


def available_metrics() -> list[str]:
    """Sorted list of registered metric names."""
    return sorted(_REGISTRY)


def get_metric(metric: str | Metric, **kwargs) -> Metric:
    """Resolve a metric name or pass through an existing instance.

    ``kwargs`` are forwarded to the factory (e.g. ``p=`` for minkowski).
    """
    if isinstance(metric, Metric):
        if kwargs:
            raise ValueError("kwargs are only valid with a metric name")
        return metric
    try:
        factory = _REGISTRY[metric.lower()]
    except KeyError:
        raise ValueError(
            f"unknown metric {metric!r}; available: {', '.join(available_metrics())}"
        ) from None
    return factory(**kwargs)
