"""Metric abstraction used by every search structure in this package.

The paper's algorithms are defined for arbitrary metric spaces: the only
operations ever performed on data are distance evaluations ``rho(q, x)``.
All structures in :mod:`repro.core` and :mod:`repro.baselines` are therefore
written against the :class:`Metric` interface below, and the brute-force
primitive (:mod:`repro.parallel.bruteforce`) is written against the *blocked
pairwise* form, which is the matmul-like kernel the paper identifies as the
unit of parallel work.

Two performance-relevant facts shape this interface:

* ``pairwise(Q, X)`` computes an ``(m, n)`` distance block in one vectorized
  call.  This is the distance-computation step of ``BF(Q, X)`` and has the
  computational structure of matrix-matrix multiply (paper §3).
* Every evaluation is counted.  The paper's work bounds (Theorems 1 and 2)
  are statements about the *number of distance evaluations*, so the counter
  is the measurement instrument for the theory experiments, independent of
  wall-clock noise.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod

import numpy as np

__all__ = ["DistanceCounter", "Metric", "VectorMetric", "check_metric_axioms"]


class DistanceCounter:
    """Tally of distance evaluations and the floating point work they imply.

    ``n_evals`` counts scalar distance evaluations (one per (q, x) pair);
    ``n_calls`` counts kernel invocations (one per pairwise block).  The
    theory experiments (Theorems 1 and 2) are statements about ``n_evals``.
    Updates are lock-protected: the thread executor runs pairwise blocks
    concurrently and a lost update would corrupt the work measurements.
    """

    __slots__ = ("n_evals", "n_calls", "_lock")

    def __init__(self, n_evals: int = 0, n_calls: int = 0) -> None:
        self.n_evals = n_evals
        self.n_calls = n_calls
        self._lock = threading.Lock()

    def add(self, n_evals: int) -> None:
        with self._lock:
            self.n_evals += int(n_evals)
            self.n_calls += 1

    def reset(self) -> None:
        with self._lock:
            self.n_evals = 0
            self.n_calls = 0

    def snapshot(self) -> "DistanceCounter":
        # both fields must be read under the lock: a torn read racing a
        # concurrent add() would report an (n_evals, n_calls) pair that
        # never existed, corrupting the per-stage eval deltas derived
        # from consecutive snapshots
        with self._lock:
            return DistanceCounter(self.n_evals, self.n_calls)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DistanceCounter(n_evals={self.n_evals}, n_calls={self.n_calls})"


class Metric(ABC):
    """A metric ``rho`` over an indexable dataset.

    Subclasses implement :meth:`_pairwise`; this base class handles counting
    and argument checking.  Datasets are whatever the concrete metric
    understands: ``(n, d)`` float arrays for vector metrics, sequences of
    strings for edit distance, node-id arrays for graph metrics.
    """

    #: short name used in registries and reports
    name: str = "metric"
    #: floating point ops per scalar distance evaluation in dimension d,
    #: as a function of d; used by the simulator's cost model.
    flops_per_eval_coeff: float = 3.0

    def __init__(self) -> None:
        self.counter = DistanceCounter()

    # ------------------------------------------------------------------ api
    def pairwise(self, Q, X) -> np.ndarray:
        """Return the ``(len(Q), len(X))`` matrix of distances.

        This is the distance-computation step of the brute force primitive.
        """
        D = self._pairwise(Q, X)
        self.counter.add(D.size)
        return D

    def distance(self, q, x) -> float:
        """Distance between two single points."""
        return float(self.pairwise(self._as_batch(q), self._as_batch(x))[0, 0])

    def flops_per_eval(self, dim: int) -> float:
        """Model FLOPs for one evaluation at the given ambient dimension."""
        return self.flops_per_eval_coeff * max(int(dim), 1)

    def reset_counter(self) -> None:
        self.counter.reset()

    # ------------------------------------------------------ subclass hooks
    @abstractmethod
    def _pairwise(self, Q, X) -> np.ndarray:
        """Compute the distance block without counting."""

    def _as_batch(self, x):
        """Wrap a single point as a length-1 batch (overridable)."""
        x = np.asarray(x)
        if x.ndim == 1:
            return x[None, :]
        return x

    def length(self, X) -> int:
        """Number of points in a dataset as seen by this metric."""
        return len(X)

    def take(self, X, idx):
        """Subset a dataset by integer indices (``X[L]`` in the paper)."""
        idx = np.asarray(idx, dtype=np.intp)
        if isinstance(X, np.ndarray):
            return X[idx]
        return [X[i] for i in idx]

    def dim(self, X) -> int:
        """Ambient dimension used for the FLOP model (1 for non-vector data)."""
        X = np.asarray(X) if not isinstance(X, np.ndarray) else X
        if getattr(X, "ndim", 1) >= 2:
            return int(X.shape[1])
        return 1

    def cache_token(self):
        """Key component identifying this metric's prepared-operand form.

        Metrics whose preparation depends only on the data share a token per
        class; metrics carrying fitted state (e.g. Mahalanobis) must override
        so two differently-parameterized instances never share cache entries.
        """
        return type(self).__qualname__

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class VectorMetric(Metric):
    """Base for metrics over ``(n, d)`` float arrays with input validation.

    Beyond the plain :meth:`pairwise` entry point, vector metrics support
    the *prepared-operand* protocol of :mod:`repro.metrics.engine`:
    :meth:`prepare` hoists everything data-dependent but query-independent
    out of the kernel (dtype coercion, contiguity, squared norms, …) and
    :meth:`pairwise_prepared` consumes two prepared operands without
    recomputing any of it.  Metrics that are monotone transforms of a
    cheaper squared form (the Gram-trick family) additionally set
    ``squared_ok`` and accept ``squared=True``, letting callers rank in the
    squared domain and apply :meth:`from_squared` only to the handful of
    values they return.
    """

    #: whether ``pairwise_prepared(..., squared=True)`` is supported (the
    #: metric is a monotone transform of a cheaper squared-distance kernel)
    squared_ok: bool = False

    #: shape of the prepared kernel, letting batched callers fuse many
    #: prepared blocks into one 3-D kernel call: ``"gram"`` (squared
    #: distances from sqnorms and a GEMM), ``"angular"`` (arccos of the
    #: norm-scaled GEMM), or ``None`` (no fusable form; callers fall back
    #: to per-block ``pairwise_prepared``)
    prepared_kernel: str | None = None

    def pairwise(self, Q, X) -> np.ndarray:
        Q = np.ascontiguousarray(np.atleast_2d(np.asarray(Q, dtype=np.float64)))
        X = np.ascontiguousarray(np.atleast_2d(np.asarray(X, dtype=np.float64)))
        if Q.shape[1] != X.shape[1]:
            raise ValueError(
                f"dimension mismatch: queries have d={Q.shape[1]}, "
                f"database has d={X.shape[1]}"
            )
        return super().pairwise(Q, X)

    # -------------------------------------------------- prepared operands
    def prepare(self, X, dtype: str = "float64"):
        """Compute-ready form of ``X``: contiguous, coerced, norms hoisted.

        The returned :class:`~repro.metrics.engine.Prepared` can be sliced
        and gathered without recomputation; feed it (and a prepared query
        block) to :meth:`pairwise_prepared`.  This is the O(n d) work that
        :mod:`repro.metrics.engine` caches per dataset.
        """
        from .engine import Prepared, check_dtype

        check_dtype(dtype)
        data = np.ascontiguousarray(np.atleast_2d(np.asarray(X, dtype=dtype)))
        extras = self._prepare_extras(data)
        data = extras.pop("data", data)
        return Prepared(data, **extras)

    def _prepare_extras(self, data: np.ndarray) -> dict:
        """Per-row terms to hoist out of the kernel (subclass hook).

        May return ``sqnorms``/``norms`` entries, and may replace ``data``
        itself (Mahalanobis stores Cholesky-transformed coordinates).
        """
        return {}

    def pairwise_prepared(self, Qp, Xp, *, squared: bool = False) -> np.ndarray:
        """Distance block from two prepared operands (counted like
        :meth:`pairwise`, recomputing none of the hoisted terms).

        With ``squared=True`` (``squared_ok`` metrics only) the block holds
        squared distances — same ranking, no elementwise root.
        """
        if Qp.data.shape[1] != Xp.data.shape[1]:
            raise ValueError(
                f"dimension mismatch: queries have d={Qp.data.shape[1]}, "
                f"database has d={Xp.data.shape[1]}"
            )
        D = self._pairwise_prepared(Qp, Xp, squared)
        self.counter.add(D.size)
        return D

    def _pairwise_prepared(self, Qp, Xp, squared: bool) -> np.ndarray:
        """Default: run the plain kernel on the coerced data (no hoisting
        beyond contiguity/dtype).  Gram-trick subclasses override."""
        if squared:
            raise ValueError(f"{self.name} has no squared-distance form")
        return self._pairwise(Qp.data, Xp.data)

    def paired(self, A, B) -> np.ndarray:
        """Row-aligned distances ``rho(A[i], B[i])`` as a ``(n,)`` vector.

        The elementwise companion of :meth:`pairwise`, used by the float64
        refinement step to re-score selected (query, candidate) pairs
        without materializing a full cross-product block.  Evaluations are
        counted like any other.
        """
        A = np.ascontiguousarray(np.atleast_2d(np.asarray(A, dtype=np.float64)))
        B = np.ascontiguousarray(np.atleast_2d(np.asarray(B, dtype=np.float64)))
        if A.shape != B.shape:
            raise ValueError(f"paired operands must align, got {A.shape} vs {B.shape}")
        d = self._paired(A, B)
        self.counter.add(d.size)
        return d

    def _paired(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        """Default: diagonals of small pairwise blocks (subclasses with a
        cheap elementwise form override)."""
        n = len(A)
        out = np.empty(n)
        step = 64
        for lo in range(0, n, step):
            hi = min(lo + step, n)
            out[lo:hi] = np.diagonal(self._pairwise(A[lo:hi], B[lo:hi]))
        return out

    def from_squared(self, Dsq: np.ndarray) -> np.ndarray:
        """Map squared-domain values back to distances (``squared_ok`` only)."""
        raise ValueError(f"{self.name} has no squared-distance form")

    def to_squared(self, D: np.ndarray) -> np.ndarray:
        """Map distances into the squared domain (``squared_ok`` only)."""
        raise ValueError(f"{self.name} has no squared-distance form")

    def validate(self, X) -> None:
        """Reject non-finite data.

        NaN/inf coordinates silently corrupt every downstream comparison
        (NaN distances compare false everywhere, so pruning rules would
        discard valid answers); index builds call this once up front.
        """
        X = np.asarray(X, dtype=np.float64)
        if not np.isfinite(X).all():
            bad = int(np.count_nonzero(~np.isfinite(X).all(axis=-1)))
            raise ValueError(
                f"data contains non-finite values in {bad} point(s); "
                "clean the input before indexing"
            )


def check_metric_axioms(
    metric: Metric,
    X,
    *,
    n_triples: int = 200,
    rng: np.random.Generator | None = None,
    rtol: float = 1e-9,
    atol: float = 1e-6,
) -> None:
    """Spot-check metric axioms on random triples from ``X``.

    Raises ``AssertionError`` on the first violated axiom.  Used by tests and
    available to users validating custom metrics before building an RBC (the
    correctness of the exact search's pruning rules depends on the triangle
    inequality).
    """
    rng = rng or np.random.default_rng(0)
    n = metric.length(X)
    if n < 3:
        raise ValueError("need at least 3 points to check axioms")
    for _ in range(n_triples):
        i, j, k = rng.choice(n, size=3, replace=False)
        xi = metric.take(X, [i])
        xj = metric.take(X, [j])
        xk = metric.take(X, [k])
        dij = metric.pairwise(xi, xj)[0, 0]
        dji = metric.pairwise(xj, xi)[0, 0]
        dik = metric.pairwise(xi, xk)[0, 0]
        djk = metric.pairwise(xj, xk)[0, 0]
        dii = metric.pairwise(xi, xi)[0, 0]
        assert dij >= 0.0, f"negativity violated: d={dij}"
        assert abs(dii) <= atol, f"identity violated: d(x,x)={dii}"
        assert np.isclose(dij, dji, rtol=rtol, atol=atol), (
            f"symmetry violated: {dij} vs {dji}"
        )
        slack = rtol * max(dij, 1.0) + atol
        assert dij <= dik + djk + slack, (
            f"triangle inequality violated: d(i,j)={dij} > "
            f"d(i,k)+d(k,j)={dik + djk}"
        )
