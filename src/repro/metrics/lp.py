"""Vectorized Minkowski-family metrics over dense float arrays.

The paper runs all experiments under the Euclidean (``l2``) metric but the
algorithms are stated for arbitrary metrics; these are the standard vector
metrics a downstream user will reach for.

``Euclidean`` uses the Gram-matrix expansion

    ||q - x||^2 = ||q||^2 - 2 <q, x> + ||x||^2

so the inner loop is a single GEMM — exactly the "distance computation step
has virtually the same structure as matrix-matrix multiply" observation of
paper §3.  The other metrics use broadcasting over a blocked axis to bound
the temporary to ``block_rows * n * d`` floats.
"""

from __future__ import annotations

import numpy as np

from .base import VectorMetric

__all__ = [
    "Euclidean",
    "SqEuclidean",
    "Manhattan",
    "Chebyshev",
    "Minkowski",
    "Cosine",
    "Hamming",
]

#: rows of Q processed per broadcast block in the non-GEMM kernels;
#: keeps the (block, n, d) temporary within a few hundred MB for typical n, d.
_BLOCK_ROWS = 256


def _blocked_rowwise(kernel, Q: np.ndarray, X: np.ndarray) -> np.ndarray:
    """Apply ``kernel(Qblock, X) -> (b, n)`` over row blocks of ``Q``."""
    m = Q.shape[0]
    out = np.empty((m, X.shape[0]), dtype=np.float64)
    for lo in range(0, m, _BLOCK_ROWS):
        hi = min(lo + _BLOCK_ROWS, m)
        out[lo:hi] = kernel(Q[lo:hi], X)
    return out


class SqEuclidean(VectorMetric):
    """Squared Euclidean distance.

    Not a metric (fails the triangle inequality) but monotone in one, so it
    yields identical nearest neighbors at lower cost; exposed for users who
    only need rankings.  The RBC *exact* algorithm must not be used with it
    (its pruning rules require the triangle inequality); ``RBC`` validates
    this via the ``is_true_metric`` flag.
    """

    name = "sqeuclidean"
    is_true_metric = False
    flops_per_eval_coeff = 2.0
    squared_ok = True
    prepared_kernel = "gram"

    def _pairwise(self, Q: np.ndarray, X: np.ndarray) -> np.ndarray:
        q2 = np.einsum("ij,ij->i", Q, Q)
        x2 = np.einsum("ij,ij->i", X, X)
        D = q2[:, None] - 2.0 * (Q @ X.T) + x2[None, :]
        np.maximum(D, 0.0, out=D)
        return D

    def _prepare_extras(self, data: np.ndarray) -> dict:
        return {"sqnorms": np.einsum("ij,ij->i", data, data)}

    def _paired(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        diff = A - B
        return np.einsum("ij,ij->i", diff, diff)

    def _gram_sq(self, Qp, Xp) -> np.ndarray:
        """Squared distances from prepared operands — the cached-norm GEMM.

        Accumulated in place (``-2G + ||q||^2 + ||x||^2``); bit-identical
        to the broadcast expression since IEEE addition commutes and the
        ``-2`` scale is exact, but without the broadcast temporaries.
        """
        D = Qp.data @ Xp.data.T
        D *= -2.0
        D += Qp.sqnorms[:, None]
        D += Xp.sqnorms[None, :]
        np.maximum(D, 0.0, out=D)
        return D

    def _pairwise_prepared(self, Qp, Xp, squared: bool) -> np.ndarray:
        # squared Euclidean *is* its own squared form
        return self._gram_sq(Qp, Xp)

    def from_squared(self, Dsq: np.ndarray) -> np.ndarray:
        return Dsq

    def to_squared(self, D: np.ndarray) -> np.ndarray:
        return D


class Euclidean(SqEuclidean):
    """Euclidean (``l2``) distance via the Gram trick."""

    name = "euclidean"
    is_true_metric = True
    flops_per_eval_coeff = 2.0
    squared_ok = True

    def _pairwise(self, Q: np.ndarray, X: np.ndarray) -> np.ndarray:
        D = super()._pairwise(Q, X)
        np.sqrt(D, out=D)
        return D

    def _paired(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        return np.sqrt(super()._paired(A, B))

    def _pairwise_prepared(self, Qp, Xp, squared: bool) -> np.ndarray:
        D = self._gram_sq(Qp, Xp)
        if not squared:
            np.sqrt(D, out=D)
        return D

    def from_squared(self, Dsq: np.ndarray) -> np.ndarray:
        return np.sqrt(np.maximum(Dsq, 0.0))

    def to_squared(self, D: np.ndarray) -> np.ndarray:
        return D * D


class Manhattan(VectorMetric):
    """``l1`` (cityblock) distance.

    The paper's expansion-rate intuition (Definition 1) is given for the
    ``l1`` grid, where ``c = 2^d``.
    """

    name = "manhattan"
    is_true_metric = True
    flops_per_eval_coeff = 3.0

    def _pairwise(self, Q: np.ndarray, X: np.ndarray) -> np.ndarray:
        return _blocked_rowwise(
            lambda qb, xb: np.abs(qb[:, None, :] - xb[None, :, :]).sum(axis=2),
            Q,
            X,
        )


class Chebyshev(VectorMetric):
    """``l-infinity`` distance."""

    name = "chebyshev"
    is_true_metric = True
    flops_per_eval_coeff = 3.0

    def _pairwise(self, Q: np.ndarray, X: np.ndarray) -> np.ndarray:
        return _blocked_rowwise(
            lambda qb, xb: np.abs(qb[:, None, :] - xb[None, :, :]).max(axis=2),
            Q,
            X,
        )


class Minkowski(VectorMetric):
    """General ``l_p`` distance for ``p >= 1``."""

    name = "minkowski"
    is_true_metric = True
    flops_per_eval_coeff = 5.0

    def __init__(self, p: float = 3.0) -> None:
        if p < 1.0:
            raise ValueError(f"l_p is a metric only for p >= 1, got p={p}")
        super().__init__()
        self.p = float(p)
        self.name = f"minkowski(p={p:g})"

    def _pairwise(self, Q: np.ndarray, X: np.ndarray) -> np.ndarray:
        p = self.p
        if np.isinf(p):
            return Chebyshev._pairwise(self, Q, X)

        def kern(qb, xb):
            return (np.abs(qb[:, None, :] - xb[None, :, :]) ** p).sum(axis=2) ** (
                1.0 / p
            )

        return _blocked_rowwise(kern, Q, X)


class Cosine(VectorMetric):
    """Angular distance ``arccos(<q,x> / (|q||x|))`` — a true metric on the
    sphere, unlike the common ``1 - cos`` "cosine distance"."""

    name = "angular"
    is_true_metric = True
    flops_per_eval_coeff = 2.0
    prepared_kernel = "angular"

    def _pairwise(self, Q: np.ndarray, X: np.ndarray) -> np.ndarray:
        qn = np.linalg.norm(Q, axis=1)
        xn = np.linalg.norm(X, axis=1)
        if np.any(qn == 0) or np.any(xn == 0):
            raise ValueError("angular distance undefined for zero vectors")
        C = (Q @ X.T) / np.outer(qn, xn)
        np.clip(C, -1.0, 1.0, out=C)
        return np.arccos(C)

    def _paired(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        an = np.linalg.norm(A, axis=1)
        bn = np.linalg.norm(B, axis=1)
        if np.any(an == 0) or np.any(bn == 0):
            raise ValueError("angular distance undefined for zero vectors")
        c = np.einsum("ij,ij->i", A, B) / (an * bn)
        np.clip(c, -1.0, 1.0, out=c)
        return np.arccos(c)

    def _prepare_extras(self, data: np.ndarray) -> dict:
        norms = np.linalg.norm(data, axis=1)
        if np.any(norms == 0):
            raise ValueError("angular distance undefined for zero vectors")
        return {"norms": norms}

    def _pairwise_prepared(self, Qp, Xp, squared: bool) -> np.ndarray:
        if squared:
            raise ValueError(f"{self.name} has no squared-distance form")
        C = (Qp.data @ Xp.data.T) / np.outer(Qp.norms, Xp.norms)
        np.clip(C, -1.0, 1.0, out=C)
        return np.arccos(C)


class Hamming(VectorMetric):
    """Hamming distance: number of mismatching coordinates."""

    name = "hamming"
    is_true_metric = True
    flops_per_eval_coeff = 2.0

    def _pairwise(self, Q: np.ndarray, X: np.ndarray) -> np.ndarray:
        return _blocked_rowwise(
            lambda qb, xb: (qb[:, None, :] != xb[None, :, :]).sum(axis=2).astype(
                np.float64
            ),
            Q,
            X,
        )
