"""Quantized operand tier below the kernel engine.

The engine (PR 2) removed *recompute* from the brute-force primitive; this
module attacks *per-evaluation cost*, following the quantization playbook
of the André thesis (PAPERS.md): store the database in a compressed code
form whose scan moves fewer bytes and cheaper instructions per distance,
and let an exact float64 re-rank (``refine_topk``) repair the precision.

Three code kinds are supported, all derived from a metric's float64
:class:`~repro.metrics.engine.Prepared` operand so the transform-carrying
metrics (Mahalanobis) and the angular metric quantize uniformly:

* ``int8``  — per-dimension symmetric scalar quantization (scale =
  ``max|x_d| / 127``), 4x smaller than float32;
* ``float16`` — a storage-only half-precision cast (numpy has no half
  GEMM, so scans always run on the decode cache);
* ``pq`` — product quantization: the dimensions split into ``M``
  subspaces, each coded by one byte indexing a 256-centroid codebook
  learned with a small seeded k-means; scans via asymmetric distance
  tables (ADC) under the JIT backend.

Correctness is *not* statistical.  Each database row carries its exact
reconstruction residual ``resid_j = rho(x_j, decode(code_j))``; by the
triangle inequality (both the Euclidean family and the geodesic angular
distance are true metrics on their prepared spaces)::

    |rho(q, x_j) - rho(q, decode(code_j))| <= resid_j

so approximate scan distances bracket the true ones.  :func:`quant_topk`
selects an over-fetched frontier of ``k' = c k`` candidates per query and
*certifies* it covers the true top-k: the k-th smallest upper bound among
the selected must not exceed the best possible lower bound of anything
unselected.  Rows that fail the certificate (adversarial inputs, huge
residuals) fall back to an exact bound filter over the full row — slower,
never wrong.  The survivors are re-scored in float64, so the returned ids
are identical to the uncompressed engine's answers.

The scan itself has two backends (see :mod:`repro.metrics.jit`): plain
numpy runs a float32 GEMM over the *decode cache* (BLAS speed, the codes
supply only the bound structure), while the optional numba backend scans
the 1-byte codes directly — the bytes-moved win quantization promises.
"""

from __future__ import annotations

import numpy as np

from .engine import Prepared, refine_topk

__all__ = [
    "QUANT_KINDS",
    "QuantizedOperand",
    "quantize_prepared",
    "quant_topk",
    "quant_search",
    "bound_filter",
    "supports_quantization",
]

#: code kinds the tier accepts (``quantizer=`` knob values; ``"auto"`` is
#: resolved by the autotuner before reaching this module)
QUANT_KINDS = ("int8", "float16", "pq")

#: relative slack widening every certificate/bound compare: float32 scan
#: arithmetic carries ~1e-7 relative error, 1e-4 leaves ample headroom at
#: the cost of an occasional extra candidate (extra candidates are
#: harmless — the float64 re-rank discards them)
_SLACK = 1e-4
#: absolute floor for the slack (distances can legitimately be 0.0)
_ATOL = 1e-9

#: default over-fetch multiplier: k' = max(ck, k + 16) candidates are
#: selected before the float64 re-rank (the ``c`` in the Issue's k'=ck)
DEFAULT_OVER_FETCH = 4


def check_quantizer(kind: str) -> str:
    """Validate a ``quantizer=`` knob value (``"auto"`` handled upstream)."""
    if kind not in QUANT_KINDS:
        raise ValueError(
            f"quantizer must be one of {QUANT_KINDS}, got {kind!r}"
        )
    return kind


def supports_quantization(metric) -> bool:
    """Quantized scans exist for the GEMM-shaped prepared kernels only."""
    return getattr(metric, "prepared_kernel", None) in ("gram", "angular")


class QuantizedOperand:
    """A database in code form plus everything the certified scan needs.

    ``codes`` is the compressed representation (int8 rows, float16 rows,
    or uint8 PQ code matrix); ``decoded`` is a float32
    :class:`~repro.metrics.engine.Prepared` decode cache used by the numpy
    scan backend and by the grouped stage-2 substitution; ``resid`` holds
    each row's exact float64 reconstruction distance and ``rmax`` its
    maximum over valid rows.  ``ids`` maps scan columns to global database
    ids (identity when ``None``), and ``valid`` masks slack rows of a
    packed layout out of every scan.
    """

    __slots__ = (
        "kind", "kernel", "codes", "scale", "inv_norm", "codebooks",
        "decoded", "resid", "rmax", "ids", "valid", "_invalid_cols",
    )

    def __init__(
        self,
        kind: str,
        kernel: str,
        codes: np.ndarray,
        decoded: Prepared,
        resid: np.ndarray,
        *,
        scale: np.ndarray | None = None,
        inv_norm: np.ndarray | None = None,
        codebooks: np.ndarray | None = None,
        ids: np.ndarray | None = None,
        valid: np.ndarray | None = None,
    ) -> None:
        self.kind = kind
        self.kernel = kernel  # e.g. "gram/int8", "angular/pq"
        self.codes = codes
        self.scale = scale
        self.inv_norm = inv_norm
        self.codebooks = codebooks
        self.decoded = decoded
        self.resid = resid
        self.ids = ids
        self.valid = valid
        self._invalid_cols = (
            None if valid is None or bool(valid.all())
            else np.flatnonzero(~valid)
        )
        self.rmax = float(resid.max()) if resid.size else 0.0

    def __len__(self) -> int:
        return len(self.codes)

    @property
    def code_bytes(self) -> int:
        """Bytes the code representation occupies (the scan's working set
        under the JIT backend; the decode cache is counted separately)."""
        total = self.codes.nbytes
        for extra in (self.scale, self.inv_norm, self.codebooks):
            if extra is not None:
                total += extra.nbytes
        return total

    @property
    def nbytes(self) -> int:
        return self.code_bytes + self.decoded.nbytes + self.resid.nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QuantizedOperand({self.kernel}, n={len(self.codes)}, "
            f"rmax={self.rmax:.3g})"
        )


def _pq_layout(d: int) -> int:
    """Subspace count: the largest of 8/4/2/1 dividing ``d``."""
    for m in (8, 4, 2, 1):
        if d % m == 0 and d // m >= 1:
            return m
    return 1  # pragma: no cover - unreachable (1 always divides)


def _pq_train(base: np.ndarray, n_sub: int, seed: int):
    """Seeded per-subspace k-means codebooks (Lloyd on a bounded sample).

    Returns ``(codes (n, M) uint8, codebooks (M, K, d_sub) float64)``.
    """
    n, d = base.shape
    d_sub = d // n_sub
    k_cb = min(256, n)
    rng = np.random.default_rng(seed)
    sample = (
        base if n <= 4096
        else base[rng.choice(n, size=4096, replace=False)]
    )
    codes = np.empty((n, n_sub), dtype=np.uint8)
    codebooks = np.empty((n_sub, k_cb, d_sub))
    for m in range(n_sub):
        sub = sample[:, m * d_sub : (m + 1) * d_sub]
        centers = sub[rng.choice(len(sub), size=k_cb, replace=False)].copy()
        for _ in range(8):  # Lloyd iterations; seeded, deterministic
            d2 = (
                ((sub**2).sum(axis=1))[:, None]
                - 2.0 * (sub @ centers.T)
                + (centers**2).sum(axis=1)[None, :]
            )
            assign = d2.argmin(axis=1)
            for c in range(k_cb):
                sel = assign == c
                if sel.any():
                    centers[c] = sub[sel].mean(axis=0)
        full = base[:, m * d_sub : (m + 1) * d_sub]
        d2 = (
            ((full**2).sum(axis=1))[:, None]
            - 2.0 * (full @ centers.T)
            + (centers**2).sum(axis=1)[None, :]
        )
        codes[:, m] = d2.argmin(axis=1).astype(np.uint8)
        codebooks[m] = centers
    return codes, codebooks


def quantize_prepared(
    metric,
    prepared: Prepared,
    kind: str,
    *,
    seed: int = 0,
    ids: np.ndarray | None = None,
    valid: np.ndarray | None = None,
) -> QuantizedOperand:
    """Quantize a float64 prepared operand into code form.

    Works on ``prepared.data`` — the metric's *prepared space* — so the
    Mahalanobis transform and the angular normalization are handled
    uniformly: residuals are geodesic arc distances for ``"angular"``
    kernels and Euclidean distances in prepared space for ``"gram"``.
    ``valid`` marks live rows of a packed layout (slack rows get residual
    0 and are masked out of every scan); ``ids`` maps rows to global ids.
    """
    check_quantizer(kind)
    kernel = getattr(metric, "prepared_kernel", None)
    if kernel not in ("gram", "angular"):
        raise ValueError(
            f"{type(metric).__name__} has no quantizable prepared kernel "
            f"(need 'gram' or 'angular', got {kernel!r})"
        )
    base = np.asarray(prepared.data, dtype=np.float64)
    angular = kernel == "angular"
    if angular:
        base = base / prepared.norms[:, None]
    if valid is not None and not valid.all():
        base = np.where(valid[:, None], base, 0.0)
        if angular:
            # zeroed slack rows would renormalize to nan; park them on a
            # harmless unit vector (they are masked out of scans anyway)
            base[~valid, 0] = 1.0

    scale = inv_norm = codebooks = None
    if kind == "int8":
        scale = np.abs(base).max(axis=0) / 127.0
        scale[scale == 0.0] = 1.0
        codes = np.clip(np.rint(base / scale), -127, 127).astype(np.int8)
        dec64 = codes * scale
    elif kind == "float16":
        codes = base.astype(np.float16)
        dec64 = codes.astype(np.float64)
    else:  # pq
        codes, codebooks = _pq_train(base, _pq_layout(base.shape[1]), seed)
        d_sub = base.shape[1] // codebooks.shape[0]
        dec64 = np.concatenate(
            [
                codebooks[m][codes[:, m]]
                for m in range(codebooks.shape[0])
            ],
            axis=1,
        )
        assert dec64.shape[1] == d_sub * codebooks.shape[0]

    if angular:
        norms = np.sqrt((dec64**2).sum(axis=1))
        norms[norms == 0.0] = 1.0
        inv_norm = (1.0 / norms).astype(np.float32)
        unit = dec64 / norms[:, None]
        resid = np.arccos(np.clip((base * unit).sum(axis=1), -1.0, 1.0))
        dec32 = np.ascontiguousarray(unit, dtype=np.float32)
        decoded = Prepared(
            dec32, norms=np.ones(len(dec32), dtype=np.float32)
        )
    else:
        resid = np.sqrt(((base - dec64) ** 2).sum(axis=1))
        dec32 = np.ascontiguousarray(dec64, dtype=np.float32)
        decoded = Prepared(
            dec32, sqnorms=(dec64**2).sum(axis=1).astype(np.float32)
        )
    if valid is not None:
        resid = np.where(valid, resid, 0.0)
        mx = float(resid[valid].max()) if valid.any() else 0.0
    op = QuantizedOperand(
        kind,
        f"{kernel}/{kind}",
        codes,
        decoded,
        resid,
        scale=None if scale is None else scale.astype(np.float32),
        inv_norm=inv_norm,
        codebooks=codebooks,
        ids=ids,
        valid=valid,
    )
    if valid is not None:
        op.rmax = mx
    return op


# --------------------------------------------------------------- flat scan
def _scan_block(metric, qop: QuantizedOperand, q32, q2, lo, hi, backend):
    """One (chunk, n) block of approximate scan scores, ascending = closer.

    ``gram`` kernels return squared Euclidean distances in prepared space;
    ``angular`` kernels return *negated* cosine similarities (the arccos
    is applied only to the selected frontier).  Invalid (slack) columns
    are pushed to ``+inf``.
    """
    from .jit import scan_codes_block

    angular = qop.kernel.startswith("angular")
    S = None
    if backend == "numba":
        S = scan_codes_block(qop, q32[lo:hi], q2 if q2 is None else q2[lo:hi])
    if S is None:
        dec = qop.decoded
        G = q32[lo:hi] @ dec.data.T
        if angular:
            np.negative(G, out=G)
        else:
            G *= -2.0
            G += q2[lo:hi, None]
            G += dec.sqnorms[None, :]
            np.maximum(G, 0.0, out=G)
        S = G
    if qop._invalid_cols is not None:
        S[:, qop._invalid_cols] = np.inf
    return S


def _root(S_sel, angular: bool) -> np.ndarray:
    """Selected scores -> distance domain (root / arccos)."""
    if angular:
        return np.arccos(np.clip(-S_sel, -1.0, 1.0))
    return np.sqrt(S_sel)


def quant_topk(
    metric,
    Qb,
    qop: QuantizedOperand,
    k: int,
    *,
    over_fetch: int = DEFAULT_OVER_FETCH,
    row_chunk: int = 64,
    backend: str | None = None,
    counter: bool = True,
):
    """Certified candidate generation on the quantized operand.

    Returns ``(cand (m, k'), info)``: per query, ``k' = max(ck, k+16)``
    candidate *global* ids (``-1`` padded) guaranteed to contain the true
    top-k, plus an info dict (``k_prime``, ``n_fallback``,
    ``approx_ids`` — the pre-re-rank top-k, for recall accounting).

    Per chunk of queries the scan block stays cache-resident: select the
    ``k'+1`` smallest approximate scores with one ``argpartition``, then
    certify via the triangle-inequality bounds that nothing unselected can
    reach the top-k (the k-th smallest selected upper bound must be below
    the frontier's lower bound).  Rows failing the certificate re-filter
    the full row with exact per-row bounds — never wrong, merely slower.
    """
    from .jit import kernel_backend

    if backend is None:
        backend = kernel_backend(qop.kind)
    angular = qop.kernel.startswith("angular")
    Qp = metric.prepare(np.atleast_2d(np.asarray(Qb)), dtype="float32")
    if angular:
        q32 = Qp.data / Qp.norms[:, None]
        q2 = None
    else:
        q32, q2 = Qp.data, Qp.sqnorms
    m = len(q32)
    n = len(qop.codes)
    n_valid = n if qop.valid is None else int(qop.valid.sum())
    k_eff = min(k, n_valid) if n_valid else 1
    k2 = min(n - 1, max(over_fetch * k, k + 16))
    width = min(n, k2 + 1)
    full = width >= n_valid  # selecting everything: trivially certified

    resid32 = qop.resid.astype(np.float32)
    rmax = qop.rmax
    cand = np.full((m, width), -1, dtype=np.int64)
    approx = np.full((m, k_eff), -1, dtype=np.int64)
    n_fallback = 0
    fallback_rows: list[tuple[int, np.ndarray]] = []

    for lo in range(0, m, row_chunk):
        hi = min(lo + row_chunk, m)
        S = _scan_block(metric, qop, q32, q2, lo, hi, backend)
        if full:
            order = np.argsort(S, axis=1, kind="stable")[:, :width]
            if width > n_valid:
                # the sort tail past the live rows holds +inf slack
                # columns; leave those slots -1 so the ids mapping cannot
                # resurrect a packed slack row as a real candidate
                order[:, n_valid:] = -1
            cand[lo:hi] = order
            approx[lo:hi] = order[:, :k_eff]
            continue
        part = np.argpartition(S, k2, axis=1)[:, : k2 + 1]
        ps = np.take_along_axis(S, part, axis=1)
        order = np.argsort(ps, axis=1, kind="stable")
        part = np.take_along_axis(part, order, axis=1)
        ps = np.take_along_axis(ps, order, axis=1)
        dist = _root(ps, angular)  # (chunk, k2+1) selected distances
        sel_resid = resid32[part]
        ub = dist + sel_resid
        # U = k-th smallest selected upper bound >= true k-th NN distance
        U = np.partition(ub, k_eff - 1, axis=1)[:, k_eff - 1]
        U = U * (1.0 + _SLACK) + _ATOL
        # everything unselected sits beyond the frontier's approx distance,
        # so its true distance is at least frontier - rmax
        frontier_lb = dist[:, -1] - rmax
        ok = U <= frontier_lb
        cand[lo:hi] = part
        approx[lo:hi] = part[:, :k_eff]
        for r in np.flatnonzero(~ok):
            # exact per-row bound filter: keep every column whose lower
            # bound can still reach the certified upper bound U
            if angular:
                thr = np.cos(np.clip(U[r] + resid32, 0.0, np.pi))
                keep = np.flatnonzero(-S[r] >= thr)
            else:
                keep = np.flatnonzero(S[r] <= (U[r] + resid32) ** 2)
            n_fallback += 1
            if keep.size > width:
                cand[lo + r] = -1
                fallback_rows.append((lo + r, keep))
            else:
                cand[lo + r, : keep.size] = keep
                cand[lo + r, keep.size :] = -1
    if counter:
        metric.counter.add(int(m) * n_valid)
    if qop.ids is not None:
        gids = np.where(cand >= 0, qop.ids[np.clip(cand, 0, None)], -1)
        approx_g = np.where(
            approx >= 0, qop.ids[np.clip(approx, 0, None)], -1
        )
        fallback_rows = [(r, qop.ids[kp]) for r, kp in fallback_rows]
    else:
        gids, approx_g = cand, approx
    info = {
        "quantizer": qop.kind,
        "backend": backend,
        "k_prime": int(width),
        "n_fallback": int(n_fallback),
        "code_bytes": int(qop.code_bytes),
        "approx_ids": approx_g,
    }
    return gids, fallback_rows, info


def quant_search(
    metric,
    Qb,
    X,
    qop: QuantizedOperand,
    k: int,
    *,
    over_fetch: int = DEFAULT_OVER_FETCH,
    row_chunk: int = 64,
    backend: str | None = None,
):
    """Certified quantized scan + exact float64 re-rank.

    The returned ``(dist, idx)`` are id-identical to an uncompressed
    float64 brute-force top-k over the live rows of ``qop`` (ties broken
    by candidate order, exactly like the float32 engine path).  ``info``
    additionally reports ``recall_before_rerank`` — the fraction of final
    ids already present in the approximate top-k, i.e. what a
    re-rank-free quantized answer would have scored.
    """
    Qb = np.atleast_2d(np.asarray(Qb))
    gids, fallback_rows, info = quant_topk(
        metric, Qb, qop, k,
        over_fetch=over_fetch, row_chunk=row_chunk, backend=backend,
    )
    dist, idx = refine_topk(metric, Qb, X, gids, k)
    for r, keep_ids in fallback_rows:
        # oversized fallback rows re-rank their full bound-filtered set
        dist[r : r + 1], idx[r : r + 1] = refine_topk(
            metric, Qb[r : r + 1], X, keep_ids[None, :], k
        )
    approx = info.pop("approx_ids")
    hit = (approx[:, :, None] == idx[:, None, :]) & (idx[:, None, :] >= 0)
    n_real = np.maximum((idx >= 0).sum(axis=1), 1)
    info["recall_before_rerank"] = float(
        (hit.any(axis=1).sum(axis=1) / n_real).mean()
    ) if len(idx) else 1.0
    return dist, idx, info


# ----------------------------------------------------- grouped-scan filter
def bound_filter(
    D: np.ndarray, resid: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Rigorous candidate mask for a small *distance-domain* block.

    ``D`` holds approximate distances of queries (rows) against decoded
    candidates (columns) whose reconstruction residuals are ``resid``.
    Returns ``(mask, U)``: ``mask[i, j]`` keeps candidate ``j`` for query
    ``i`` iff its lower bound can still reach the certified k-th upper
    bound ``U[i]`` — so the kept set provably contains the block's true
    top-k.  Used by the grouped (stage-2) quantized scans, where blocks
    are small enough that full-row bounds are cheap.
    """
    k_eff = min(k, D.shape[1])
    ub = D + resid[None, :]
    U = np.partition(ub, k_eff - 1, axis=1)[:, k_eff - 1]
    U = U * (1.0 + _SLACK) + _ATOL
    mask = (D - resid[None, :]) <= U[:, None]
    return mask, U
