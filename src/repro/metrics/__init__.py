"""Metric layer: the distance functions every search structure is built on.

See :mod:`repro.metrics.base` for the :class:`Metric` interface and
:mod:`repro.metrics.registry` for name-based lookup.
"""

from .base import DistanceCounter, Metric, VectorMetric, check_metric_axioms
from .edit import EditDistance, encode_strings
from .engine import (
    CacheCounter,
    OperandCache,
    Prepared,
    operand_cache,
    prepare_operands,
    refine_topk,
)
from .graph import GraphMetric
from .jit import HAVE_NUMBA, kernel_backend, set_kernel_backend
from .mahalanobis import Mahalanobis
from .quantize import (
    QUANT_KINDS,
    QuantizedOperand,
    quant_search,
    quantize_prepared,
    supports_quantization,
)
from .lp import (
    Chebyshev,
    Cosine,
    Euclidean,
    Hamming,
    Manhattan,
    Minkowski,
    SqEuclidean,
)
from .registry import available_metrics, get_metric, register_metric

__all__ = [
    "DistanceCounter",
    "Metric",
    "VectorMetric",
    "check_metric_axioms",
    "CacheCounter",
    "OperandCache",
    "Prepared",
    "operand_cache",
    "prepare_operands",
    "refine_topk",
    "EditDistance",
    "encode_strings",
    "GraphMetric",
    "HAVE_NUMBA",
    "kernel_backend",
    "set_kernel_backend",
    "QUANT_KINDS",
    "QuantizedOperand",
    "quant_search",
    "quantize_prepared",
    "supports_quantization",
    "Euclidean",
    "SqEuclidean",
    "Mahalanobis",
    "Manhattan",
    "Chebyshev",
    "Minkowski",
    "Cosine",
    "Hamming",
    "available_metrics",
    "get_metric",
    "register_metric",
]
