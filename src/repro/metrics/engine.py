"""Kernel engine: prepared operands for zero-recompute brute-force calls.

The paper reduces every search to the brute-force primitive ``BF(Q, X[L])``
whose distance step is GEMM-shaped (§3), so the distance kernel *is* the
serving hot path.  Against a fixed database the naive formulation wastes
work on every call: the Gram-trick metrics recompute the database norm
vector ``||x||^2`` (an O(n d) reduction), every call re-runs dtype coercion
and ``ascontiguousarray`` on operands that never change, and Mahalanobis
re-applies its Cholesky transform to the whole database per block.

This module removes all of that:

* :class:`Prepared` — a dataset in compute-ready form: contiguous data in
  the compute dtype plus whatever per-row terms the metric can hoist out of
  the kernel (squared norms for the Gram-trick metrics, row norms for the
  angular metric, transformed coordinates for Mahalanobis).  Prepared
  operands slice and gather without recomputation, so blocked kernels pay
  the O(n d) preparation exactly once.
* :class:`OperandCache` — a process-wide cache of prepared operands keyed
  on array identity plus a caller-supplied version stamp.  Index structures
  bump their stamp on ``insert``/``delete``/rebuild, which invalidates
  every prepared form derived from the database.  The cache keeps weak
  references only, so it never extends an array's lifetime.
* :class:`CacheCounter` — the measurement instrument (mirroring
  :class:`~repro.metrics.base.DistanceCounter`): how many operand
  preparations (norm computations) ran, how many calls were served from
  cache, and how many entries were invalidated.  The "database norms are
  computed exactly once per build" property is asserted against it.
* :func:`refine_topk` — the float64 refinement step of the ``float32``
  compute path: candidate ids selected in float32 are re-scored with exact
  float64 distances and re-ranked, so the low-precision GEMM only has to
  get the *candidate set* right, not the final ordering.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict

import numpy as np

__all__ = [
    "Prepared",
    "CacheCounter",
    "OperandCache",
    "operand_cache",
    "prepare_operands",
    "rescore_pairs",
    "refine_topk",
    "COMPUTE_DTYPES",
]

#: dtypes the compute path accepts; float64 is the exact default, float32
#: halves GEMM traffic (see docs/performance.md for the safety argument)
COMPUTE_DTYPES = ("float64", "float32")


def check_dtype(dtype: str) -> str:
    """Validate and normalize a compute-dtype knob value."""
    if dtype not in COMPUTE_DTYPES:
        raise ValueError(
            f"compute dtype must be one of {COMPUTE_DTYPES}, got {dtype!r}"
        )
    return dtype


class Prepared:
    """A dataset in compute-ready form for one metric.

    ``data`` is contiguous in the compute dtype; ``sqnorms``/``norms`` hold
    the metric's hoisted per-row terms (``None`` when the metric has none).
    Slicing and gathering preserve the hoisted terms, so blocked kernels
    never recompute them.
    """

    __slots__ = ("data", "sqnorms", "norms")

    def __init__(
        self,
        data: np.ndarray,
        sqnorms: np.ndarray | None = None,
        norms: np.ndarray | None = None,
    ) -> None:
        self.data = data
        self.sqnorms = sqnorms
        self.norms = norms

    def __len__(self) -> int:
        return len(self.data)

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def nbytes(self) -> int:
        total = self.data.nbytes
        for extra in (self.sqnorms, self.norms):
            if extra is not None:
                total += extra.nbytes
        return total

    def slice(self, lo: int, hi: int) -> "Prepared":
        """Contiguous row range as views (no copies, no recomputation)."""
        return Prepared(
            self.data[lo:hi],
            None if self.sqnorms is None else self.sqnorms[lo:hi],
            None if self.norms is None else self.norms[lo:hi],
        )

    def take(self, idx: np.ndarray) -> "Prepared":
        """Gather rows by index, carrying the hoisted terms along."""
        return Prepared(
            self.data[idx],
            None if self.sqnorms is None else self.sqnorms[idx],
            None if self.norms is None else self.norms[idx],
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Prepared(n={len(self.data)}, dtype={self.data.dtype})"


class CacheCounter:
    """Tally of operand-cache activity (exposed like ``DistanceCounter``).

    ``n_prepared`` counts full preparations — each one is an O(n d) pass
    over a dataset (coercion + norms); ``n_hits`` counts calls served from
    cache without touching the data; ``n_invalidated`` counts entries
    dropped because their version stamp moved or their array died.
    """

    __slots__ = ("n_prepared", "n_hits", "n_invalidated", "_lock")

    def __init__(
        self, n_prepared: int = 0, n_hits: int = 0, n_invalidated: int = 0
    ) -> None:
        self.n_prepared = n_prepared
        self.n_hits = n_hits
        self.n_invalidated = n_invalidated
        self._lock = threading.Lock()

    def add_prepared(self) -> None:
        with self._lock:
            self.n_prepared += 1

    def add_hit(self) -> None:
        with self._lock:
            self.n_hits += 1

    def add_invalidated(self) -> None:
        with self._lock:
            self.n_invalidated += 1

    def reset(self) -> None:
        with self._lock:
            self.n_prepared = 0
            self.n_hits = 0
            self.n_invalidated = 0

    def snapshot(self) -> "CacheCounter":
        with self._lock:
            return CacheCounter(self.n_prepared, self.n_hits, self.n_invalidated)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CacheCounter(n_prepared={self.n_prepared}, n_hits={self.n_hits}, "
            f"n_invalidated={self.n_invalidated})"
        )


class _Entry:
    __slots__ = ("ref", "version", "prepared")

    def __init__(self, ref, version, prepared) -> None:
        self.ref = ref
        self.version = version
        self.prepared = prepared


class OperandCache:
    """Process-wide cache of prepared operands for fixed datasets.

    Keyed on ``(metric token, id(array), dtype)`` plus a caller-supplied
    integer *version stamp*: a lookup with a different stamp than the
    cached entry invalidates and re-prepares.  Index structures own their
    stamp and bump it on every dynamic update, so stale norms can never be
    served after an ``insert``/``delete``/rebuild.

    Entries hold weak references to the source array — the cache never
    keeps data alive — and the table is LRU-bounded.  The ``id()`` key is
    safe because a dead referent (whose id could be recycled) is detected
    through the weakref and dropped.  The cache does **not** fingerprint
    array contents: callers mutating an array in place must bump the
    version stamp (the index classes do) or bypass the cache.
    """

    def __init__(self, max_entries: int = 32) -> None:
        self._entries: OrderedDict[tuple, _Entry] = OrderedDict()
        self._lock = threading.Lock()
        self.max_entries = int(max_entries)
        self.stats = CacheCounter()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def _evict_family(self, token, xid) -> None:
        """Drop every entry for ``(token, xid)`` — all dtypes and derived
        quantized variants.  Caller holds the lock.

        A version-stamp miss means the source array changed; the float64
        parent and everything *derived* from it (float32 coercions, int8 /
        float16 / PQ codes) are stale together, so the whole family goes
        at once — a quantized variant can never outlive its parent.
        """
        dead = [k for k in self._entries if k[0] == token and k[1] == xid]
        for k in dead:
            del self._entries[k]
            self.stats.add_invalidated()

    def _lookup(self, key, X, version):
        """Hit / stale handling shared by the dtype and quantized getters.

        Returns the cached value on a hit; ``None`` after evicting the
        whole ``(token, id)`` family on a stale or dead entry.  Caller
        holds the lock.
        """
        entry = self._entries.get(key)
        if entry is None:
            return None
        if entry.ref() is X and entry.version == version:
            self._entries.move_to_end(key)
            self.stats.add_hit()
            return entry.prepared
        self._evict_family(key[0], key[1])
        return None

    def _store(self, key, X, version, prepared) -> None:
        try:
            ref = weakref.ref(X)
        except TypeError:  # non-weakrefable duck arrays: don't cache
            return
        with self._lock:
            self._entries[key] = _Entry(ref, version, prepared)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def get(self, metric, X: np.ndarray, dtype: str = "float64", version: int = 0):
        """Return the prepared form of ``X``, computing it at most once per
        ``(array, dtype, version)``."""
        check_dtype(dtype)
        key = (metric.cache_token(), id(X), dtype)
        with self._lock:
            hit = self._lookup(key, X, version)
        if hit is not None:
            return hit
        prepared = metric.prepare(X, dtype=dtype)
        self.stats.add_prepared()
        self._store(key, X, version, prepared)
        return prepared

    def get_quantized(
        self,
        metric,
        X: np.ndarray,
        kind: str,
        *,
        version: int = 0,
        seed: int = 0,
        ids=None,
        valid=None,
    ):
        """Quantized operand for ``X``, derived from (and version-locked
        to) the cached float64 parent.

        Cached under ``(metric token, id(X), "quant:<kind>")`` with the
        same version stamp as the parent, so a stale parent takes every
        quantized sibling with it (see :meth:`_evict_family`).  ``ids``/
        ``valid``/``seed`` parameterize the build only — they are
        functions of the same index version the stamp already tracks.
        """
        from .quantize import quantize_prepared

        key = (metric.cache_token(), id(X), f"quant:{kind}")
        with self._lock:
            hit = self._lookup(key, X, version)
        if hit is not None:
            return hit
        parent = self.get(metric, X, dtype="float64", version=version)
        qop = quantize_prepared(
            metric, parent, kind, seed=seed, ids=ids, valid=valid
        )
        self.stats.add_prepared()
        self._store(key, X, version, qop)
        return qop


#: the process-wide cache used by ``bf_knn``/``bf_range`` and the indexes
operand_cache = OperandCache()


def prepare_operands(metric, X, dtype: str = "float64", *, version: int = 0):
    """Prepared form of ``X`` for ``metric``, via the process-wide cache."""
    return operand_cache.get(metric, X, dtype=dtype, version=version)


def rescore_pairs(metric, Qb, X, idx: np.ndarray) -> np.ndarray:
    """Exact float64 distances for an ``(m, k')`` candidate-id block.

    Row ``i``'s candidates ``idx[i]`` are scored against query ``i`` with
    the metric's *paired* kernel, whose per-pair reduction is independent
    of how the rows are batched — so the scores are bit-identical whether
    the queries arrive one at a time or in one block (the serving
    pipeline's determinism anchor).  Padding slots (id ``-1``) score
    ``inf``.  The evaluations are real work, counted on the metric's
    :class:`~repro.metrics.base.DistanceCounter` like any other.
    """
    m, kk = idx.shape
    Qb = np.atleast_2d(np.asarray(Qb, dtype=np.float64))
    d = np.empty((m, kk))
    # row blocks bound the (rows * kk, d) gathered operands
    step = max(1, 65536 // max(kk, 1))
    for lo in range(0, m, step):
        hi = min(lo + step, m)
        block = idx[lo:hi]
        safe = np.clip(block, 0, None).reshape(-1)
        pairs_q = np.repeat(Qb[lo:hi], kk, axis=0)
        d[lo:hi] = metric.paired(pairs_q, metric.take(X, safe)).reshape(
            hi - lo, kk
        )
    d[idx < 0] = np.inf
    return d


def refine_topk(
    metric,
    Qb,
    X,
    idx: np.ndarray,
    k: int,
    *,
    ids_are_global: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Re-score float32-selected candidates in float64 and re-rank to ``k``.

    ``idx`` is an ``(m, k')`` candidate-id block (``k' >= k``) selected by
    the low-precision kernel; each row's candidates are re-scored with the
    exact float64 :func:`rescore_pairs` and the ``k`` nearest kept.
    Padding slots (id ``-1``) are ignored.  Returns ``(dist, idx)`` of
    shape ``(m, k)``, rows sorted ascending, padded with ``inf``/``-1``.
    """
    d = rescore_pairs(metric, Qb, X, idx)
    order = np.argsort(d, axis=1, kind="stable")[:, :k]
    out_d = np.take_along_axis(d, order, axis=1)
    out_i = np.take_along_axis(idx, order, axis=1).astype(np.int64, copy=False)
    out_i = np.where(np.isfinite(out_d), out_i, -1)
    return out_d, out_i
