"""Mahalanobis metric.

A true metric for any symmetric positive-definite matrix ``VI`` (the
inverse covariance): ``rho(q, x) = sqrt((q-x)^T VI (q-x))``.  Implemented
by the Cholesky trick — ``VI = L L^T`` makes the distance the plain
Euclidean distance between ``L^T``-transformed points — so the kernel
inherits the Gram-matrix GEMM structure (and all of the RBC machinery)
unchanged.  This is the metric of choice when features have wildly
different scales or known correlations, a common preprocessing question
for the UCI-style datasets in the paper's Table 1.
"""

from __future__ import annotations

import numpy as np

from .base import VectorMetric

__all__ = ["Mahalanobis"]


class Mahalanobis(VectorMetric):
    """Mahalanobis distance for a given SPD inverse-covariance matrix.

    Parameters
    ----------
    VI:
        ``(d, d)`` symmetric positive-definite matrix, e.g.
        ``np.linalg.inv(np.cov(X.T))``.
    """

    name = "mahalanobis"
    is_true_metric = True
    flops_per_eval_coeff = 4.0  # transform amortizes; compare ~2d + slack

    def __init__(self, VI: np.ndarray) -> None:
        super().__init__()
        VI = np.asarray(VI, dtype=np.float64)
        if VI.ndim != 2 or VI.shape[0] != VI.shape[1]:
            raise ValueError(f"VI must be square, got shape {VI.shape}")
        if not np.allclose(VI, VI.T, rtol=1e-10, atol=1e-12):
            raise ValueError("VI must be symmetric")
        try:
            # L L^T = VI; transform is x -> L^T x
            self._L = np.linalg.cholesky(VI)
        except np.linalg.LinAlgError:
            raise ValueError("VI must be positive definite") from None
        self.VI = VI
        self.dim_ = VI.shape[0]

    @classmethod
    def from_data(cls, X: np.ndarray, *, reg: float = 1e-6) -> "Mahalanobis":
        """Fit ``VI`` as the (regularized) inverse covariance of ``X``."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        cov = np.cov(X.T)
        cov = np.atleast_2d(cov) + reg * np.eye(X.shape[1])
        return cls(np.linalg.inv(cov))

    squared_ok = True
    prepared_kernel = "gram"  # prepared data is L^T-transformed, so the
    # batched kernel is the plain Gram form on it

    def cache_token(self):
        # prepared operands embed the Cholesky transform, so two instances
        # with different VI must never share cache entries
        return (type(self).__qualname__, id(self))

    def _pairwise(self, Q: np.ndarray, X: np.ndarray) -> np.ndarray:
        if Q.shape[1] != self.dim_:
            raise ValueError(
                f"metric fitted for d={self.dim_}, data has d={Q.shape[1]}"
            )
        Qt = Q @ self._L
        Xt = X @ self._L
        q2 = np.einsum("ij,ij->i", Qt, Qt)
        x2 = np.einsum("ij,ij->i", Xt, Xt)
        D = q2[:, None] - 2.0 * (Qt @ Xt.T) + x2[None, :]
        np.maximum(D, 0.0, out=D)
        np.sqrt(D, out=D)
        return D

    def _paired(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        diff = (A - B) @ self._L
        return np.sqrt(np.einsum("ij,ij->i", diff, diff))

    def _prepare_extras(self, data: np.ndarray) -> dict:
        # hoist the Cholesky transform: prepared data holds L^T-transformed
        # coordinates, so the kernel is the plain Gram trick on them
        if data.shape[1] != self.dim_:
            raise ValueError(
                f"metric fitted for d={self.dim_}, data has d={data.shape[1]}"
            )
        Xt = np.ascontiguousarray(data @ self._L.astype(data.dtype, copy=False))
        return {"data": Xt, "sqnorms": np.einsum("ij,ij->i", Xt, Xt)}

    def _pairwise_prepared(self, Qp, Xp, squared: bool) -> np.ndarray:
        D = Qp.data @ Xp.data.T
        D *= -2.0
        D += Qp.sqnorms[:, None]
        D += Xp.sqnorms[None, :]
        np.maximum(D, 0.0, out=D)
        if not squared:
            np.sqrt(D, out=D)
        return D

    def from_squared(self, Dsq: np.ndarray) -> np.ndarray:
        return np.sqrt(np.maximum(Dsq, 0.0))

    def to_squared(self, D: np.ndarray) -> np.ndarray:
        return D * D
