"""Levenshtein edit distance as a :class:`~repro.metrics.base.Metric`.

The paper stresses that the RBC works "at the generality of metrics", citing
edit distance on strings as an example (§6).  This module provides a
vectorized batch implementation: for a single query the classic
dynamic-programming recurrence is evaluated with the database axis fully
vectorized in NumPy, so computing ``BF(q, X)`` costs ``O(len(q))`` ufunc
sweeps instead of ``O(n * len(q) * len(x))`` Python operations.

Strings are stored internally as int32 code arrays padded to a common length
with a sentinel, which both enables vectorization and makes ``take`` (the
``X[L]`` subset operation of the brute-force primitive) a cheap fancy-index.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .base import Metric

__all__ = ["EditDistance", "encode_strings"]

_PAD = -1


def encode_strings(strings: Sequence[str]) -> tuple[np.ndarray, np.ndarray]:
    """Encode strings as an ``(n, Lmax)`` int32 array plus a length vector."""
    lengths = np.fromiter((len(s) for s in strings), dtype=np.int64, count=len(strings))
    lmax = int(lengths.max()) if len(strings) else 0
    codes = np.full((len(strings), lmax), _PAD, dtype=np.int32)
    for i, s in enumerate(strings):
        if s:
            codes[i, : len(s)] = np.frombuffer(s.encode("utf-32-le"), dtype=np.int32)
    return codes, lengths


class EditDistance(Metric):
    """Unit-cost Levenshtein distance over sequences of strings.

    Datasets are plain Python sequences of ``str``; encoding is cached per
    dataset object identity so repeated ``BF`` calls during an RBC build and
    search do not re-encode.
    """

    name = "levenshtein"
    is_true_metric = True
    # one DP cell costs ~6 ops; per-eval cost scales with len(q)*len(x),
    # approximated by coeff * mean_len in the simulator's model.
    flops_per_eval_coeff = 6.0

    def __init__(self) -> None:
        super().__init__()
        # id -> (dataset object, encoding).  The dataset object is kept as
        # a strong reference deliberately: ids are only unique among live
        # objects, so the cache must pin its keys' referents and verify
        # identity on lookup, or a recycled id would serve a stale
        # encoding for a different dataset.
        self._cache: dict[int, tuple[object, tuple[np.ndarray, np.ndarray]]] = {}

    # ------------------------------------------------------------ dataset ops
    def _encoded(self, X) -> tuple[np.ndarray, np.ndarray]:
        if isinstance(X, tuple) and len(X) == 2 and isinstance(X[0], np.ndarray):
            return X  # already encoded
        hit = self._cache.get(id(X))
        if hit is not None and hit[0] is X:
            return hit[1]
        enc = encode_strings(list(X))
        # bounded cache: builds touch a handful of distinct datasets
        if len(self._cache) > 8:
            self._cache.clear()
        self._cache[id(X)] = (X, enc)
        return enc

    def length(self, X) -> int:
        if isinstance(X, tuple) and len(X) == 2 and isinstance(X[0], np.ndarray):
            return X[0].shape[0]
        return len(X)

    def take(self, X, idx):
        idx = np.asarray(idx, dtype=np.intp)
        codes, lengths = self._encoded(X)
        return (codes[idx], lengths[idx])

    def dim(self, X) -> int:
        _, lengths = self._encoded(X)
        return int(lengths.mean()) if lengths.size else 1

    def _as_batch(self, x):
        if isinstance(x, str):
            return [x]
        return x

    # ------------------------------------------------------------ the kernel
    def _pairwise(self, Q, X) -> np.ndarray:
        qcodes, qlens = self._encoded(Q)
        xcodes, xlens = self._encoded(X)
        m, n = qcodes.shape[0], xcodes.shape[0]
        D = np.empty((m, n), dtype=np.float64)
        for i in range(m):
            D[i] = _levenshtein_one_to_many(
                qcodes[i, : qlens[i]], xcodes, xlens
            )
        return D


def _levenshtein_one_to_many(
    q: np.ndarray, xcodes: np.ndarray, xlens: np.ndarray
) -> np.ndarray:
    """Levenshtein distances from one code sequence to a batch.

    Rolls the DP over the query axis; the database axis (n strings x Lmax
    columns) is handled with whole-array NumPy ops.  ``prev[j, t]`` is the DP
    value for database string j at column t after consuming the current
    number of query characters.
    """
    n, lmax = xcodes.shape
    if lmax == 0:
        return np.abs(xlens - len(q)).astype(np.float64)

    col = np.arange(lmax + 1, dtype=np.float64)
    prev = np.broadcast_to(col, (n, lmax + 1)).copy()

    for qi, qc in enumerate(q, start=1):
        cur = np.empty_like(prev)
        cur[:, 0] = qi
        sub_cost = (xcodes != qc).astype(np.float64)  # (n, lmax)
        diag = prev[:, :-1] + sub_cost
        up = prev[:, 1:] + 1.0
        best = np.minimum(diag, up)
        # the left-dependency makes columns sequential; lmax is small
        # relative to n, so this inner loop stays cheap.
        for t in range(lmax):
            cur[:, t + 1] = np.minimum(best[:, t], cur[:, t] + 1.0)
        prev = cur

    return prev[np.arange(n), xlens]
