"""Experiment harness: run indexes, collect work/time, format paper tables.

Every benchmark follows the same recipe: build an index, run a traced
query batch, replay the trace on the relevant machine models, and compare
against brute force on the same models.  This module centralizes that
recipe so each benchmark file only declares its workload and parameters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..simulator.machine import MachineSpec, SimResult, simulate
from ..simulator.trace import TraceRecorder

__all__ = ["QueryRun", "traced_query", "traced_build", "format_table", "geomean"]


@dataclass
class QueryRun:
    """Everything measured for one query batch on one index."""

    name: str
    dist: np.ndarray
    idx: np.ndarray
    wall_s: float
    #: distance evaluations spent by this batch
    evals: int
    #: machine-name -> simulated replay of the recorded trace
    sims: dict[str, SimResult] = field(default_factory=dict)

    def sim_time(self, machine: MachineSpec) -> float:
        return self.sims[machine.name].time_s


def traced_query(
    index,
    Q,
    machines: list[MachineSpec],
    *,
    k: int = 1,
    name: str | None = None,
    **query_kwargs,
) -> QueryRun:
    """Run ``index.query`` once with tracing; replay on each machine.

    The index's metric counter is snapshotted around the call, so ``evals``
    is exactly this batch's work.
    """
    recorder = TraceRecorder()
    before = index.metric.counter.n_evals
    t0 = time.perf_counter()
    dist, idx = index.query(Q, k, recorder=recorder, **query_kwargs)
    wall = time.perf_counter() - t0
    evals = index.metric.counter.n_evals - before
    sims = {m.name: simulate(recorder.trace, m) for m in machines}
    return QueryRun(
        name=name or type(index).__name__,
        dist=dist,
        idx=idx,
        wall_s=wall,
        evals=evals,
        sims=sims,
    )


def traced_build(
    index, X, machines: list[MachineSpec], **build_kwargs
) -> dict[str, SimResult]:
    """Build ``index`` on ``X`` with tracing; replay on each machine."""
    recorder = TraceRecorder()
    index.build(X, recorder=recorder, **build_kwargs)
    return {m.name: simulate(recorder.trace, m) for m in machines}


def geomean(values) -> float:
    """Geometric mean (the right average for speedup ratios)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0 or (arr <= 0).any():
        raise ValueError("geomean needs positive values")
    return float(np.exp(np.log(arr).mean()))


def format_table(headers: list[str], rows: list[list], *, title: str = "") -> str:
    """Fixed-width ASCII table, floats rendered to 3 significant figures.

    Benchmarks print these so the generated output can be compared line by
    line with the paper's tables.
    """

    def render(v) -> str:
        if isinstance(v, float):
            if v == 0 or (0.01 <= abs(v) < 10_000):
                return f"{v:.3g}"
            return f"{v:.2e}"
        return str(v)

    cells = [[render(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
