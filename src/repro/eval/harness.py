"""Experiment harness: run indexes, collect work/time, format paper tables.

Every benchmark follows the same recipe: build an index, run a traced
query batch, replay the trace on the relevant machine models, and compare
against brute force on the same models.  This module centralizes that
recipe so each benchmark file only declares its workload and parameters.

``traced_query``/``traced_build`` are thin wrappers over the unified
runtime: each run executes under an :class:`~repro.runtime.context.
ExecContext` whose :class:`~repro.runtime.context.TimingRecorder` collects
the trace and per-phase wall clock, and returns a
:class:`~repro.runtime.report.RunReport` — one uniform observability
record carrying results, counter windows, per-phase flops/bytes/wall time,
operand-cache activity, rule counts, and the machine-model replays.
:data:`QueryRun` remains as a backward-compatible alias of ``RunReport``,
and ``traced_build``'s report supports the machine-name indexing its old
dict return value had.
"""

from __future__ import annotations

import numpy as np

from ..runtime.context import ExecContext, TimingRecorder, resolve_ctx
from ..runtime.report import RunReport, collect_report
from ..simulator.machine import MachineSpec

__all__ = [
    "QueryRun",
    "traced_query",
    "traced_build",
    "streamed_query",
    "run_backend",
    "format_table",
    "geomean",
]

#: backward-compatible name: harness runs have always returned "a QueryRun";
#: they now return the runtime's RunReport, a strict superset of it
QueryRun = RunReport


def traced_query(
    index,
    Q,
    machines: list[MachineSpec] = (),
    *,
    k: int = 1,
    name: str | None = None,
    ctx: ExecContext | None = None,
    trace_ops: bool = True,
    **query_kwargs,
) -> RunReport:
    """Run ``index.query`` once, instrumented; replay on each machine.

    The index's metric counter and the operand cache are snapshotted
    around the call, so ``report.evals`` (and the cache window) is exactly
    this batch's work.  ``ctx`` carries execution overrides (executor,
    dtype, chunking) into the query; the harness supplies the recorder.
    With ``trace_ops=False`` no machine-model trace is collected (``sims``
    is empty) but per-phase wall time and the counter windows still are —
    the near-zero-overhead mode.

    A tracer on ``ctx`` threads through to the recorder, so recorded ops
    carry the live span's id (see :class:`~repro.simulator.trace.Op`).
    """
    run_ctx = resolve_ctx(ctx)
    recorder = TimingRecorder(trace_ops=trace_ops, tracer=run_ctx.tracer)
    run_ctx = run_ctx.with_recorder(recorder)
    with run_ctx.observe(index.metric) as obs:
        if ctx is None:
            # legacy protocol: any index with a recorder= kwarg works
            dist, idx = index.query(Q, k, recorder=recorder, **query_kwargs)
        else:
            dist, idx = index.query(Q, k, ctx=run_ctx, **query_kwargs)
    return collect_report(
        name or type(index).__name__,
        run_ctx,
        obs,
        dist=dist,
        idx=idx,
        stats=getattr(index, "last_stats", None),
        machines=machines,
    )


def traced_build(
    index,
    X,
    machines: list[MachineSpec] = (),
    *,
    name: str | None = None,
    ctx: ExecContext | None = None,
    trace_ops: bool = True,
    **build_kwargs,
) -> RunReport:
    """Build ``index`` on ``X``, instrumented; replay on each machine.

    Returns a :class:`~repro.runtime.report.RunReport` (``dist``/``idx``
    are ``None`` for builds).  The report indexes by machine name —
    ``report[machine.name].time_s`` — exactly like the plain dict this
    function used to return.
    """
    run_ctx = resolve_ctx(ctx)
    recorder = TimingRecorder(trace_ops=trace_ops, tracer=run_ctx.tracer)
    run_ctx = run_ctx.with_recorder(recorder)
    with run_ctx.observe(index.metric) as obs:
        if ctx is None:
            index.build(X, recorder=recorder, **build_kwargs)
        else:
            index.build(X, ctx=run_ctx, **build_kwargs)
    return collect_report(
        name or f"{type(index).__name__}:build",
        run_ctx,
        obs,
        stats=None,
        machines=machines,
    )


def streamed_query(
    index,
    Q,
    *,
    k: int = 1,
    qps: float | None = None,
    arrival_times=None,
    policy=None,
    name: str | None = None,
    ctx: ExecContext | None = None,
    **query_kwargs,
):
    """Replay a query-arrival trace through a serving session.

    The streaming counterpart of :func:`traced_query`: queries arrive one
    at a time (at ``qps`` or per ``arrival_times``), a
    :class:`~repro.serving.searcher.StreamingSearcher` micro-batches them
    under ``policy``'s latency budget, and the returned
    :class:`~repro.runtime.report.StreamReport` carries latency
    percentiles and throughput on top of the usual run observables.
    Results (``report.dist``/``idx``) are in arrival order and identical
    to per-query answers.

    Searcher features pass straight through: ``slo=``, ``cache=``,
    ``quality=`` (a fraction, ``True``, or a configured
    :class:`~repro.obs.quality.QualitySampler` — the windowed recall
    estimate lands in ``report.quality``), and ``flight=`` (a
    :class:`~repro.obs.flight.FlightRecorder`) are forwarded to the
    :class:`~repro.serving.searcher.StreamingSearcher` constructor;
    anything else reaches ``index.query``.
    """
    from ..serving import StreamingSearcher  # serving sits above eval

    with StreamingSearcher(
        index, k=k, policy=policy, ctx=ctx, **query_kwargs
    ) as server:
        return server.search_stream(
            Q, qps=qps, arrival_times=arrival_times, name=name
        )


def geomean(values) -> float:
    """Geometric mean (the right average for speedup ratios)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0 or (arr <= 0).any():
        raise ValueError("geomean needs positive values")
    return float(np.exp(np.log(arr).mean()))


def format_table(headers: list[str], rows: list[list], *, title: str = "") -> str:
    """Fixed-width ASCII table, floats rendered to 3 significant figures.

    Benchmarks print these so the generated output can be compared line by
    line with the paper's tables.
    """

    def render(v) -> str:
        if isinstance(v, float):
            if v == 0 or (0.01 <= abs(v) < 10_000):
                return f"{v:.3g}"
            return f"{v:.2e}"
        return str(v)

    cells = [[render(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def run_backend(
    name: str,
    X,
    Q,
    machines: list[MachineSpec] = (),
    *,
    k: int = 1,
    ctx: ExecContext | None = None,
    trace_ops: bool = True,
    build_kwargs: dict | None = None,
    observe: bool = True,
    **init_kwargs,
) -> tuple[RunReport, RunReport]:
    """Build and query a *registered* backend by name, fully traced.

    The registry-facing composition of :func:`traced_build` +
    :func:`traced_query`: ``init_kwargs`` reach the backend constructor
    (unsupported ones are dropped, so one uniform kwarg set works across
    backends), ``build_kwargs`` reach ``build``.  Returns
    ``(build_report, query_report)``, both named ``<backend>:<phase>``.

    With ``observe=True`` and a router backend, the query report is fed
    back into the router's cost model (``observe_report``) — the eval
    harness and the serving path then share one latency history.
    """
    from ..index import create_index

    index = create_index(name, lenient=True, **init_kwargs)
    build_report = traced_build(
        index,
        X,
        machines,
        name=f"{name}:build",
        ctx=ctx,
        trace_ops=trace_ops,
        **(build_kwargs or {}),
    )
    query_report = traced_query(
        index,
        Q,
        machines,
        k=k,
        name=f"{name}:query",
        ctx=ctx,
        trace_ops=trace_ops,
    )
    if observe:
        ingest = getattr(index, "observe_report", None)
        if callable(ingest):
            ingest(name, query_report)
    return build_report, query_report
