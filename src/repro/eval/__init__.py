"""Evaluation: rank error, recall, and the experiment harness."""

from ..runtime.report import RunReport, StreamReport
from .plots import ascii_plot
from .harness import (
    QueryRun,
    format_table,
    geomean,
    run_backend,
    streamed_query,
    traced_build,
    traced_query,
)
from .rank import mean_rank, ranks_of_results
from .recall import distance_ratio, recall_at_k, results_match_exactly

__all__ = [
    "ascii_plot",
    "QueryRun",
    "RunReport",
    "StreamReport",
    "format_table",
    "geomean",
    "run_backend",
    "streamed_query",
    "traced_build",
    "traced_query",
    "mean_rank",
    "ranks_of_results",
    "distance_ratio",
    "recall_at_k",
    "results_match_exactly",
]
