"""Rank error: the paper's quality measure for approximate search.

"A standard error measure is the rank of the returned point: i.e., the
number of database points closer to the query than the returned point"
(§7.2, citing Ram et al.).  Rank 0 is the exact NN, rank 1 the second NN,
and Figure 1 plots speedup against the *average* rank over queries.
"""

from __future__ import annotations

import numpy as np

from ..metrics import get_metric
from ..metrics.base import Metric
from ..parallel.blocking import row_chunks

__all__ = ["ranks_of_results", "mean_rank"]


def ranks_of_results(
    Q,
    X,
    returned_idx: np.ndarray,
    metric: str | Metric = "euclidean",
    *,
    chunk: int = 256,
) -> np.ndarray:
    """Rank of each returned point: how many database points are strictly
    closer to the query.

    ``returned_idx`` is ``(m,)`` (or ``(m, k)``, in which case the first
    column — the claimed nearest — is scored).  Entries of ``-1`` (no
    result) score ``n``.  Cost is one brute-force pass, O(mn); evaluation
    only, never part of a timed search.
    """
    metric = get_metric(metric)
    returned_idx = np.asarray(returned_idx)
    if returned_idx.ndim == 2:
        returned_idx = returned_idx[:, 0]
    m = returned_idx.shape[0]
    n = metric.length(X)
    ranks = np.empty(m, dtype=np.int64)
    for lo, hi in row_chunks(m, chunk):
        Qc = metric.take(Q, np.arange(lo, hi))
        D = metric.pairwise(Qc, X)
        for i in range(lo, hi):
            ri = returned_idx[i]
            if ri < 0:
                ranks[i] = n
                continue
            d_ret = D[i - lo, ri]
            ranks[i] = int(np.count_nonzero(D[i - lo] < d_ret))
    return ranks


def mean_rank(
    Q, X, returned_idx: np.ndarray, metric: str | Metric = "euclidean"
) -> float:
    """Average rank over queries — the x-axis of the paper's Figure 1."""
    return float(ranks_of_results(Q, X, returned_idx, metric).mean())
