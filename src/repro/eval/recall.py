"""Recall@k and exactness checks against ground truth."""

from __future__ import annotations

import numpy as np

__all__ = ["recall_at_k", "results_match_exactly", "distance_ratio"]


def recall_at_k(found_idx: np.ndarray, true_idx: np.ndarray) -> float:
    """Fraction of true k-NN ids recovered, averaged over queries.

    Both arguments are ``(m, k)`` index arrays; ``-1`` padding in either is
    ignored.  Note recall is id-based: under distance ties it can
    under-credit a correct-by-distance answer — use
    :func:`results_match_exactly` for tie-aware exactness.
    """
    found_idx = np.atleast_2d(found_idx)
    true_idx = np.atleast_2d(true_idx)
    if found_idx.shape[0] != true_idx.shape[0]:
        raise ValueError("query counts differ")
    hits, total = 0, 0
    for f, t in zip(found_idx, true_idx):
        tset = set(int(x) for x in t if x >= 0)
        if not tset:
            continue
        hits += len(tset & set(int(x) for x in f if x >= 0))
        total += len(tset)
    return hits / total if total else 1.0


def results_match_exactly(
    found_d: np.ndarray,
    true_d: np.ndarray,
    *,
    rtol: float = 1e-9,
    atol: float = 1e-9,
) -> bool:
    """Tie-aware exactness: the returned distance rows equal the true ones.

    Two different points at the same distance are both correct answers, so
    exact search is validated on distances, not ids.
    """
    return bool(
        np.allclose(np.atleast_2d(found_d), np.atleast_2d(true_d), rtol=rtol, atol=atol)
    )


def distance_ratio(found_d: np.ndarray, true_d: np.ndarray) -> float:
    """Mean ratio of returned to true NN distance (>= 1; 1 is exact).

    The natural quality measure for the ``(1 + eps)``-approximate mode.
    Rows where the true distance is zero are skipped (the query is a
    database point; any exact duplicate is a correct answer).
    """
    f = np.atleast_2d(found_d)[:, 0]
    t = np.atleast_2d(true_d)[:, 0]
    ok = t > 0
    if not ok.any():
        return 1.0
    return float((f[ok] / t[ok]).mean())
