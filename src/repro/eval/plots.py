"""Terminal figure rendering.

The paper's Figures 1-3 are log/log-log plots; the benchmarks regenerate
their data and render them as fixed-width ASCII so a diff of
``benchmarks/out/`` shows the curve shapes without a plotting stack.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

__all__ = ["ascii_plot"]

_MARKERS = "ox+*#@%&"


def _transform(v: float, log: bool) -> float:
    if log:
        if v <= 0:
            raise ValueError(f"log axis requires positive values, got {v}")
        return math.log10(v)
    return v


def _format_tick(v: float, log: bool) -> str:
    if log:
        return f"1e{v:+.0f}" if abs(v - round(v)) < 1e-9 else f"{10**v:.2g}"
    return f"{v:.3g}"


def ascii_plot(
    series: dict[str, Sequence[tuple[float, float]]],
    *,
    width: int = 64,
    height: int = 18,
    logx: bool = False,
    logy: bool = False,
    xlabel: str = "x",
    ylabel: str = "y",
    title: str = "",
) -> str:
    """Render named point series on one character grid.

    Each series gets a marker from ``oX+*...``; later series overwrite
    earlier ones where they collide.  Log axes transform before gridding,
    so log-log straight lines render straight.
    """
    if not series or all(len(pts) == 0 for pts in series.values()):
        raise ValueError("nothing to plot")
    if width < 16 or height < 4:
        raise ValueError("plot area too small")

    pts_t: dict[str, list[tuple[float, float]]] = {}
    for label, pts in series.items():
        pts_t[label] = [
            (_transform(x, logx), _transform(y, logy)) for x, y in pts
        ]
    xs = [x for pts in pts_t.values() for x, _ in pts]
    ys = [y for pts in pts_t.values() for _, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, (label, pts) in enumerate(pts_t.items()):
        marker = _MARKERS[si % len(_MARKERS)]
        for x, y in pts:
            col = round((x - x_lo) / x_span * (width - 1))
            row = height - 1 - round((y - y_lo) / y_span * (height - 1))
            grid[row][col] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    top = _format_tick(y_hi, logy)
    bot = _format_tick(y_lo, logy)
    pad = max(len(top), len(bot), len(ylabel))
    for r, row in enumerate(grid):
        if r == 0:
            label = top
        elif r == height - 1:
            label = bot
        elif r == height // 2:
            label = ylabel[:pad]
        else:
            label = ""
        lines.append(f"{label:>{pad}} |" + "".join(row))
    lines.append(" " * pad + " +" + "-" * width)
    left = _format_tick(x_lo, logx)
    right = _format_tick(x_hi, logx)
    gap = width - len(left) - len(right) - len(xlabel)
    if gap >= 2:
        axis = left + " " * (gap // 2) + xlabel + " " * (gap - gap // 2) + right
    else:
        axis = f"{left} .. {right}  ({xlabel})"
    lines.append(" " * pad + "  " + axis)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {label}"
        for i, label in enumerate(pts_t)
    )
    lines.append(" " * pad + "  " + legend)
    return "\n".join(lines)
