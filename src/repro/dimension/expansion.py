"""Expansion-rate (growth-dimension) estimation.

Definition 1 of the paper: a finite metric space has expansion rate ``c``
if ``|B(x, 2r)| <= c * |B(x, r)|`` for every point ``x`` and radius ``r``.
``log2 c`` plays the role of an intrinsic dimension (on the ``l1`` grid in
``R^d``, ``c = 2^d``).

An exact computation needs all ``n^2`` distances and all radii; the
estimator here samples ball centers and a geometric grid of radii, which is
the standard practical compromise (the exact sup over radii is dominated by
degenerate tiny balls, so we also floor the inner ball count).  The
estimate feeds the parameter rules in :mod:`repro.core.params` and the
theory benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..metrics import get_metric
from ..metrics.base import Metric

__all__ = ["ExpansionEstimate", "estimate_expansion_rate", "doubling_dimension"]


@dataclass(frozen=True)
class ExpansionEstimate:
    """Result of the sampling estimator.

    ``c`` is the chosen summary (a high quantile of per-(center, radius)
    ratios — the literal max is hugely noise-sensitive); ``c_max`` is the
    observed max; ``log2_c`` is the growth-dimension reading.
    """

    c: float
    c_max: float
    c_median: float
    n_centers: int
    n_radii: int

    @property
    def log2_c(self) -> float:
        return float(np.log2(self.c))


def estimate_expansion_rate(
    X,
    metric: str | Metric = "euclidean",
    *,
    n_centers: int = 64,
    n_radii: int = 16,
    min_ball: int = 8,
    quantile: float = 0.9,
    seed=0,
) -> ExpansionEstimate:
    """Estimate the expansion rate of ``X`` under ``metric``.

    For each sampled center the distances to all of ``X`` are computed
    once; ball cardinalities at radii ``r`` and ``2r`` are then rank
    lookups in the sorted distance list.  Radii span the distance range
    geometrically; balls smaller than ``min_ball`` points are skipped
    (their ratios are dominated by discreteness, inflating ``c``).
    """
    metric = get_metric(metric)
    n = metric.length(X)
    if n < 2 * min_ball:
        raise ValueError(f"need at least {2 * min_ball} points")
    if not 0.0 < quantile <= 1.0:
        raise ValueError("quantile must lie in (0, 1]")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    centers = rng.choice(n, size=min(n_centers, n), replace=False)

    ratios = []
    for cidx in centers:
        center = metric.take(X, [cidx])
        d = np.sort(metric.pairwise(center, X)[0])
        d_pos = d[d > 0]
        if d_pos.size < 2:
            continue
        lo, hi = d_pos[0], d_pos[-1] / 2.0
        if hi <= lo:
            continue
        radii = np.geomspace(lo, hi, n_radii)
        inner = np.searchsorted(d, radii, side="right")
        outer = np.searchsorted(d, 2.0 * radii, side="right")
        ok = inner >= min_ball
        ratios.extend((outer[ok] / inner[ok]).tolist())
    if not ratios:
        raise ValueError("no usable (center, radius) pairs; data degenerate?")
    ratios = np.asarray(ratios)
    return ExpansionEstimate(
        c=float(np.quantile(ratios, quantile)),
        c_max=float(ratios.max()),
        c_median=float(np.median(ratios)),
        n_centers=len(centers),
        n_radii=n_radii,
    )


def doubling_dimension(
    X, metric: str | Metric = "euclidean", **kwargs
) -> float:
    """``log2`` of the estimated expansion rate — the dimension reading."""
    return estimate_expansion_rate(X, metric, **kwargs).log2_c
