"""Intrinsic-dimensionality estimation (expansion rate, Definition 1)."""

from .expansion import ExpansionEstimate, doubling_dimension, estimate_expansion_rate

__all__ = ["ExpansionEstimate", "doubling_dimension", "estimate_expansion_rate"]
